package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"simgen/internal/blif"
	"simgen/internal/core"
	"simgen/internal/fuzz"
	"simgen/internal/obs"
	"simgen/internal/sweep"
)

// Two structurally different AND gates (fanin order swapped) and an OR
// gate, all on PIs a,b and PO y — the EQ and NEQ fixtures.
const (
	andBLIF  = ".model and1\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n"
	and2BLIF = ".model and2\n.inputs a b\n.outputs y\n.names b a y\n11 1\n.end\n"
	orBLIF   = ".model or1\n.inputs a b\n.outputs y\n.names a b y\n1- 1\n-1 1\n.end\n"
)

// newTestServer starts a server plus its httptest front end, torn down
// (cancel + drain) with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.CancelAll()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		hs.Close()
	})
	return srv, hs
}

// postSpec submits a spec and returns the decoded view (when accepted),
// status code, and headers.
func postSpec(t *testing.T, base string, spec JobSpec) (JobView, int, http.Header) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
	}
	return view, resp.StatusCode, resp.Header
}

// waitJob long-polls a job to a terminal state.
func waitJob(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id + "?wait=5s")
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status.terminal() {
			return v
		}
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

// getTrace fetches a job's full JSONL trace snapshot.
func getTrace(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/trace?follow=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: HTTP %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCECEquivalentJob(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	view, code, _ := postSpec(t, hs.URL, JobSpec{
		Kind:     KindCEC,
		Circuit:  CircuitRef{BLIF: andBLIF},
		CircuitB: CircuitRef{BLIF: and2BLIF},
		Seed:     3,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	v := waitJob(t, hs.URL, view.ID)
	if v.Status != StatusDone {
		t.Fatalf("status %s (error %q)", v.Status, v.Error)
	}
	if v.Result == nil || v.Result.Verdict != "equivalent" || !v.Result.Equivalent {
		t.Fatalf("want equivalent, got %+v", v.Result)
	}
}

func TestCECNotEquivalentJob(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	view, code, _ := postSpec(t, hs.URL, JobSpec{
		Kind:     KindCEC,
		Circuit:  CircuitRef{BLIF: andBLIF},
		CircuitB: CircuitRef{BLIF: orBLIF},
		Seed:     3,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	v := waitJob(t, hs.URL, view.ID)
	if v.Status != StatusDone {
		t.Fatalf("status %s (error %q)", v.Status, v.Error)
	}
	r := v.Result
	if r == nil || r.Verdict != "not_equivalent" || r.Equivalent {
		t.Fatalf("want not_equivalent, got %+v", r)
	}
	if len(r.Counterexample) != 2 {
		t.Fatalf("counterexample over 2 PIs, got %v", r.Counterexample)
	}
	// AND and OR differ exactly when a != b; the counterexample must be a
	// real witness.
	if r.Counterexample[0] == r.Counterexample[1] {
		t.Fatalf("bogus counterexample %v", r.Counterexample)
	}
}

// TestSweepJobDeadline pins the per-job budget path: sweeping the SAT-hard
// square benchmark under a tight deadline must come back undecided — not
// failed, not hung.
func TestSweepJobDeadline(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	view, code, _ := postSpec(t, hs.URL, JobSpec{
		Kind:      KindSweep,
		Circuit:   CircuitRef{Benchmark: "square"},
		Method:    "none",
		TimeoutMS: 200,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	v := waitJob(t, hs.URL, view.ID)
	if v.Status != StatusDone {
		t.Fatalf("status %s (error %q)", v.Status, v.Error)
	}
	if v.Result == nil || v.Result.Verdict != "undecided" {
		t.Fatalf("want undecided, got %+v", v.Result)
	}
	if v.Result.Sweep == nil || !v.Result.Sweep.Incomplete {
		t.Fatalf("sweep result should be incomplete: %+v", v.Result.Sweep)
	}
}

// TestCancelRunningJob cancels a deadline-free SAT-hard job mid-flight.
func TestCancelRunningJob(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	view, code, _ := postSpec(t, hs.URL, JobSpec{
		Kind:    KindSweep,
		Circuit: CircuitRef{Benchmark: "square"},
		Method:  "none",
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	// Wait for it to start (the pool has one worker and nothing else to do).
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		json.NewDecoder(resp.Body).Decode(&v) //nolint:errcheck
		resp.Body.Close()
		if v.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", v.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Post(hs.URL+"/jobs/"+view.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	v := waitJob(t, hs.URL, view.ID)
	if v.Status != StatusCanceled {
		t.Fatalf("want canceled, got %s", v.Status)
	}
}

// TestCancelQueuedJob cancels a job before any worker picks it up: a
// one-worker pool is pinned by a SAT-hard job while the victim waits.
func TestCancelQueuedJob(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	pin, code, _ := postSpec(t, hs.URL, JobSpec{
		Kind: KindSweep, Circuit: CircuitRef{Benchmark: "square"}, Method: "none"})
	if code != http.StatusAccepted {
		t.Fatalf("pin submit: HTTP %d", code)
	}
	victim, code, _ := postSpec(t, hs.URL, JobSpec{
		Kind: KindSweep, Circuit: CircuitRef{BLIF: andBLIF}})
	if code != http.StatusAccepted {
		t.Fatalf("victim submit: HTTP %d", code)
	}
	resp, err := http.Post(hs.URL+"/jobs/"+victim.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	v := waitJob(t, hs.URL, victim.ID)
	if v.Status != StatusCanceled {
		t.Fatalf("want canceled, got %s (error %q)", v.Status, v.Error)
	}
	// Unpin the worker so cleanup drains fast.
	resp, err = http.Post(hs.URL+"/jobs/"+pin.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func TestSubmitValidationAndLookup(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	for name, spec := range map[string]JobSpec{
		"unknown kind":    {Kind: "mutate", Circuit: CircuitRef{BLIF: andBLIF}},
		"no circuit":      {Kind: KindSweep},
		"two sources":     {Kind: KindSweep, Circuit: CircuitRef{BLIF: andBLIF, Benchmark: "square"}},
		"cec missing b":   {Kind: KindCEC, Circuit: CircuitRef{BLIF: andBLIF}},
		"bad method":      {Kind: KindSweep, Circuit: CircuitRef{BLIF: andBLIF}, Method: "oracle"},
		"bad engine":      {Kind: KindSweep, Circuit: CircuitRef{BLIF: andBLIF}, Engine: "quantum"},
		"path w/o root":   {Kind: KindSweep, Circuit: CircuitRef{Path: "x.blif"}},
		"sweep+circuit_b": {Kind: KindSweep, Circuit: CircuitRef{BLIF: andBLIF}, CircuitB: CircuitRef{BLIF: orBLIF}},
	} {
		if name == "path w/o root" {
			// Admission accepts it; the job itself fails at load time.
			view, code, _ := postSpec(t, hs.URL, spec)
			if code != http.StatusAccepted {
				t.Fatalf("%s: HTTP %d", name, code)
			}
			if v := waitJob(t, hs.URL, view.ID); v.Status != StatusFailed {
				t.Fatalf("%s: want failed, got %s", name, v.Status)
			}
			continue
		}
		if _, code, _ := postSpec(t, hs.URL, spec); code != http.StatusBadRequest {
			t.Errorf("%s: want 400, got %d", name, code)
		}
	}
	for _, path := range []string{"/jobs/nope", "/jobs/nope/trace", "/jobs/nope/report"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: want 404, got %d", path, resp.StatusCode)
		}
	}
	// Trace of a traceless job is also a 404.
	view, code, _ := postSpec(t, hs.URL, JobSpec{Kind: KindSweep, Circuit: CircuitRef{BLIF: andBLIF}})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	waitJob(t, hs.URL, view.ID)
	resp, err := http.Get(hs.URL + "/jobs/" + view.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("traceless trace: want 404, got %d", resp.StatusCode)
	}
}

// fuzzBLIF renders a deterministic fuzz circuit as inline BLIF.
func fuzzBLIF(t testing.TB, shape string, seed int64) string {
	t.Helper()
	sh, ok := fuzz.Shapes()[shape]
	if !ok {
		t.Fatalf("unknown shape %q", shape)
	}
	var buf bytes.Buffer
	if err := blif.Write(&buf, fuzz.Generate(rand.New(rand.NewSource(seed)), sh)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// directSweep hand-rolls the canonical cmd/sweep pipeline — runner, guided
// source, obligation scheduler — for one spec with a bare JSONL tracer.
// It is deliberately NOT implemented via Execute: it pins that the service
// and the CLI pipeline stay the same computation.
func directSweep(t testing.TB, spec JobSpec) (*Result, []byte) {
	t.Helper()
	sp := spec
	sp.normalize()
	net, err := NewLoader("", nil).Load(sp.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jt := obs.NewJSONL(&buf)
	jt.Deterministic = sp.Deterministic
	opts := sp.sweepOptions()
	opts.Tracer = jt

	res := &Result{Kind: sp.Kind}
	run := core.NewRunner(net, sp.RandRounds, sp.Seed)
	run.SetTracer(jt)
	res.InitialCost = run.Classes.Cost()
	switch sp.Method {
	case "revs":
		run.RunContext(context.Background(), core.NewReverse(net, sp.Seed+1), sp.Iterations)
	case "none":
	default:
		run.RunContext(context.Background(), core.NewGenerator(net, core.StrategySimGen, sp.Seed+1), sp.Iterations)
	}
	res.GuidedCost = run.Classes.Cost()
	sw := sweep.New(net, run.Classes, opts)
	sr := sw.RunParallelContext(context.Background(), sp.Workers)
	res.Sweep = &sr
	res.FinalCost = sr.FinalCost
	if sr.Incomplete {
		res.Verdict = "undecided"
	} else {
		res.Verdict = "swept"
	}
	return res, buf.Bytes()
}

// TestConcurrentJobParity is the service's determinism gate: a batch of
// deterministic workers=1 jobs submitted concurrently to a multi-worker
// pool must each produce exactly the Result and the byte-identical JSONL
// trace of a direct, in-process run of the cmd/sweep pipeline on the same
// seed. Pool concurrency, the shared metrics tracer, HTTP transport, and
// the stream sink must all be invisible to the job's computation.
func TestConcurrentJobParity(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 4, QueueDepth: 16})

	specs := []JobSpec{
		{Kind: KindSweep, Circuit: CircuitRef{BLIF: fuzzBLIF(t, "tiny", 11)}, Seed: 5, Trace: true, Deterministic: true},
		{Kind: KindSweep, Circuit: CircuitRef{BLIF: fuzzBLIF(t, "default", 12)}, Seed: 6, Trace: true, Deterministic: true},
		{Kind: KindSweep, Circuit: CircuitRef{BLIF: fuzzBLIF(t, "xor-heavy", 13)}, Seed: 7, Method: "revs", Trace: true, Deterministic: true},
		{Kind: KindSweep, Circuit: CircuitRef{BLIF: fuzzBLIF(t, "wide", 14)}, Seed: 8, Method: "none", Trace: true, Deterministic: true},
		{Kind: KindSimGen, Circuit: CircuitRef{BLIF: fuzzBLIF(t, "const", 15)}, Seed: 9, Trace: true, Deterministic: true},
	}

	// Submit everything up front so the pool actually runs jobs
	// concurrently.
	ids := make([]string, len(specs))
	for i, spec := range specs {
		view, code, _ := postSpec(t, hs.URL, spec)
		if code != http.StatusAccepted {
			t.Fatalf("job %d: HTTP %d", i, code)
		}
		ids[i] = view.ID
	}
	for i, spec := range specs {
		v := waitJob(t, hs.URL, ids[i])
		if v.Status != StatusDone {
			t.Fatalf("job %d: status %s (error %q)", i, v.Status, v.Error)
		}
		var want *Result
		var wantTrace []byte
		if spec.Kind == KindSimGen {
			want, wantTrace = directSimGen(t, spec)
		} else {
			want, wantTrace = directSweep(t, spec)
		}
		got := v.Result
		if got.Verdict != want.Verdict ||
			got.InitialCost != want.InitialCost ||
			got.GuidedCost != want.GuidedCost ||
			got.FinalCost != want.FinalCost {
			t.Errorf("job %d: result mismatch\n got %+v\nwant %+v", i, got, want)
		}
		if want.Sweep != nil {
			if got.Sweep == nil {
				t.Fatalf("job %d: missing sweep result", i)
			}
			if got.Sweep.Proved != want.Sweep.Proved ||
				got.Sweep.Disproved != want.Sweep.Disproved ||
				got.Sweep.Unresolved != want.Sweep.Unresolved ||
				got.Sweep.Scheduled != want.Sweep.Scheduled {
				t.Errorf("job %d: sweep accounting mismatch\n got %s\nwant %s", i, got.Sweep, want.Sweep)
			}
		}
		gotTrace := getTrace(t, hs.URL, ids[i])
		if !bytes.Equal(gotTrace, wantTrace) {
			t.Errorf("job %d: trace not byte-identical (%d vs %d bytes)\nfirst service lines:\n%s\nfirst direct lines:\n%s",
				i, len(gotTrace), len(wantTrace), firstLines(gotTrace, 3), firstLines(wantTrace, 3))
		}
		// The streamed (follow) view must match the snapshot.
		resp, err := http.Get(hs.URL + "/jobs/" + ids[i] + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		followed, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(followed, gotTrace) {
			t.Errorf("job %d: followed trace differs from snapshot", i)
		}
	}
}

// directSimGen is directSweep's refinement-only sibling.
func directSimGen(t testing.TB, spec JobSpec) (*Result, []byte) {
	t.Helper()
	sp := spec
	sp.normalize()
	net, err := NewLoader("", nil).Load(sp.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jt := obs.NewJSONL(&buf)
	jt.Deterministic = sp.Deterministic
	res := &Result{Kind: sp.Kind, Verdict: "refined"}
	run := core.NewRunner(net, sp.RandRounds, sp.Seed)
	run.SetTracer(jt)
	res.InitialCost = run.Classes.Cost()
	run.RunContext(context.Background(), core.NewGenerator(net, core.StrategySimGen, sp.Seed+1), sp.Iterations)
	res.GuidedCost = run.Classes.Cost()
	res.FinalCost = res.GuidedCost
	return res, buf.Bytes()
}

func firstLines(b []byte, n int) string {
	lines := strings.SplitN(string(b), "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// TestTraceAndReportEndpoints checks the JSONL payload is well-formed
// line-delimited JSON and the report endpoint serves a decodable report.
func TestTraceAndReportEndpoints(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	view, code, _ := postSpec(t, hs.URL, JobSpec{
		Kind:          KindSweep,
		Circuit:       CircuitRef{BLIF: fuzzBLIF(t, "default", 21)},
		Seed:          4,
		Trace:         true,
		Deterministic: true,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	v := waitJob(t, hs.URL, view.ID)
	if v.Status != StatusDone {
		t.Fatalf("status %s (error %q)", v.Status, v.Error)
	}
	trace := getTrace(t, hs.URL, view.ID)
	lines := bytes.Split(bytes.TrimRight(trace, "\n"), []byte("\n"))
	if len(lines) == 0 || len(lines[0]) == 0 {
		t.Fatal("empty trace")
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("trace line %d not JSON: %v (%q)", i, err, line)
		}
		if _, ok := m["k"]; !ok {
			t.Fatalf("trace line %d missing kind: %q", i, line)
		}
	}
	resp, err := http.Get(hs.URL + "/jobs/" + view.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: HTTP %d", resp.StatusCode)
	}
	var report map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	if len(report) == 0 {
		t.Fatal("empty report")
	}

	// /metrics must include service counters by now.
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics map[string]int64
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics["sweepd.jobs.accepted"] < 1 || metrics["sweepd.jobs.completed"] < 1 {
		t.Fatalf("service counters missing from /metrics: %v", metrics)
	}
}

// TestHealthz sanity-checks the liveness endpoint shape.
func TestHealthz(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Draining {
		t.Fatalf("unexpected health %+v", h)
	}
}
