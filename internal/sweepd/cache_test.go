package sweepd

import (
	"context"
	"testing"
	"time"
)

// waitDone blocks until the job is terminal, failing the test on timeout.
func waitDone(t *testing.T, j *Job) *Result {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
	res, errMsg := j.Result()
	if errMsg != "" {
		t.Fatalf("job %s failed: %s", j.ID, errMsg)
	}
	if res == nil {
		t.Fatalf("job %s finished without a result", j.ID)
	}
	return res
}

// TestSharedCacheAcrossJobs runs the same sweep job twice against a server
// holding one process-wide verification cache: the second job must settle
// every obligation from the first job's recorded proofs and patterns — zero
// SAT and BDD prover calls — with identical verdict counts.
func TestSharedCacheAcrossJobs(t *testing.T) {
	srv := New(Config{Workers: 1, CacheDir: t.TempDir()})
	defer srv.Drain(context.Background())

	spec := JobSpec{
		Kind:    KindSweep,
		Circuit: CircuitRef{Benchmark: "cps"},
		Method:  "none",
		Seed:    11,
	}
	j1, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	cold := waitDone(t, j1)
	if cold.Sweep == nil || cold.Sweep.Proved == 0 {
		t.Fatalf("cold job proved nothing: %+v", cold)
	}

	j2, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	warm := waitDone(t, j2)
	if warm.Memoized {
		t.Fatal("memoization is off; result must come from a fresh execution")
	}
	if warm.Sweep == nil {
		t.Fatal("warm job carries no sweep result")
	}
	if warm.Sweep.SATCalls != 0 || warm.Sweep.BDDChecks != 0 {
		t.Fatalf("warm job not free of prover calls: SAT=%d BDD=%d (hits=%d misses=%d)",
			warm.Sweep.SATCalls, warm.Sweep.BDDChecks, warm.Sweep.CacheHits, warm.Sweep.CacheMisses)
	}
	if warm.Sweep.CacheHits == 0 {
		t.Fatal("warm job hit nothing in the shared cache")
	}
	if warm.Sweep.Proved != cold.Sweep.Proved {
		t.Fatalf("warm Proved=%d, cold Proved=%d", warm.Sweep.Proved, cold.Sweep.Proved)
	}
}

// TestJobMemoization submits an identical spec twice with Memo on: the
// second job's result is served from the memo without execution, and a job
// with a different spec is not.
func TestJobMemoization(t *testing.T) {
	srv := New(Config{Workers: 1, Memo: true})
	defer srv.Drain(context.Background())

	spec := JobSpec{
		Kind:    KindSweep,
		Circuit: CircuitRef{Benchmark: "alu4"},
		Seed:    5,
	}
	first := waitDone(t, mustSubmit(t, srv, spec))
	if first.Memoized {
		t.Fatal("first execution cannot be a memo hit")
	}
	second := waitDone(t, mustSubmit(t, srv, spec))
	if !second.Memoized {
		t.Fatal("identical respec did not hit the memo")
	}
	if second.Verdict != first.Verdict || second.FinalCost != first.FinalCost {
		t.Fatalf("memoized result diverges: %+v vs %+v", second, first)
	}

	other := spec
	other.Seed = 6
	third := waitDone(t, mustSubmit(t, srv, other))
	if third.Memoized {
		t.Fatal("different seed must not hit the memo")
	}

	// Traced jobs bypass the memo: their event stream must be generated.
	traced := spec
	traced.Trace = true
	fourth := waitDone(t, mustSubmit(t, srv, traced))
	if fourth.Memoized {
		t.Fatal("traced job must not be memoized")
	}
}

func mustSubmit(t *testing.T, srv *Server, spec JobSpec) *Job {
	t.Helper()
	j, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	return j
}
