package sweepd

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"simgen/internal/aiger"
	"simgen/internal/blif"
	"simgen/internal/genbench"
	"simgen/internal/mapper"
	"simgen/internal/network"
	"simgen/internal/obs"
)

// Loader resolves CircuitRefs into networks. Built-in benchmark networks
// are generated, mapped, and cover-warmed once, then shared read-only
// across every job that names them — the resident-process amortization a
// cold-started CLI cannot have. Inline payloads and data-dir files are
// parsed per job (their bytes are the client's business, and a fresh parse
// keeps the network private to the job).
type Loader struct {
	dataDir string

	mu    sync.Mutex
	bench map[string]*network.Network

	hits, misses *obs.Counter
}

// NewLoader creates a loader. dataDir roots Path refs ("" disables them);
// m receives the benchmark-cache hit/miss counters (nil for none).
func NewLoader(dataDir string, m *obs.Metrics) *Loader {
	l := &Loader{dataDir: dataDir, bench: make(map[string]*network.Network)}
	if m != nil {
		l.hits = m.Counter("sweepd.cache.benchmark_hits")
		l.misses = m.Counter("sweepd.cache.benchmark_misses")
	}
	return l
}

// Load resolves one ref. Benchmark networks come out of the shared cache
// and MUST be treated as read-only by the caller; every mutating pipeline
// stage (classes, union-find, counterexample pool) already keeps its state
// off the network, and the lazily built network caches (covers, fanouts,
// levels) are warmed before the network is published, so concurrent jobs
// only ever read it.
func (l *Loader) Load(ref CircuitRef) (*network.Network, error) {
	switch {
	case ref.BLIF != "":
		return blif.Parse(strings.NewReader(ref.BLIF))
	case ref.Bench != "":
		return blif.ParseBench(strings.NewReader(ref.Bench))
	case ref.AIGER != "":
		g, err := aiger.Read(strings.NewReader(ref.AIGER))
		if err != nil {
			return nil, err
		}
		return mapper.Map(g, mapper.DefaultOptions())
	case ref.Benchmark != "":
		return l.benchmark(ref.Benchmark)
	case ref.Path != "":
		return l.file(ref.Path)
	default:
		return nil, fmt.Errorf("sweepd: empty circuit reference")
	}
}

// benchmark returns the cached warmed network for a built-in benchmark,
// generating it on first use.
func (l *Loader) benchmark(name string) (*network.Network, error) {
	l.mu.Lock()
	if net, ok := l.bench[name]; ok {
		l.mu.Unlock()
		if l.hits != nil {
			l.hits.Add(1)
		}
		return net, nil
	}
	l.mu.Unlock()
	// Generate outside the lock: mapping a large benchmark is the
	// expensive part and must not serialize unrelated loads. A racing
	// duplicate generation is deterministic, so either copy may win.
	b, ok := genbench.ByName(name)
	if !ok {
		return nil, fmt.Errorf("sweepd: unknown benchmark %q", name)
	}
	net, err := b.LUTNetwork()
	if err != nil {
		return nil, err
	}
	warm(net)
	if l.misses != nil {
		l.misses.Add(1)
	}
	l.mu.Lock()
	if cached, ok := l.bench[name]; ok {
		net = cached // lost the race; share the published copy
	} else {
		l.bench[name] = net
	}
	l.mu.Unlock()
	return net, nil
}

// file parses a circuit file under the data root by extension.
func (l *Loader) file(rel string) (*network.Network, error) {
	if l.dataDir == "" {
		return nil, fmt.Errorf("sweepd: path circuits disabled (no -data root)")
	}
	clean := filepath.Clean("/" + rel) // forces the path under the root
	full := filepath.Join(l.dataDir, clean)
	f, err := os.Open(full)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch ext := strings.ToLower(filepath.Ext(full)); ext {
	case ".blif":
		return blif.Parse(f)
	case ".bench":
		return blif.ParseBench(f)
	case ".aag", ".aig":
		g, err := aiger.Read(f)
		if err != nil {
			return nil, err
		}
		return mapper.Map(g, mapper.DefaultOptions())
	default:
		return nil, fmt.Errorf("sweepd: unsupported circuit extension %q", ext)
	}
}

// warm forces the network's lazily built derived data (ISOP covers,
// fanouts, levels) so a cached network is read-only from publication on —
// the same warm-up the parallel scheduler performs before spawning
// workers.
func warm(net *network.Network) {
	for id := 0; id < net.NumNodes(); id++ {
		net.Covers(network.NodeID(id))
	}
	if net.NumNodes() > 0 {
		net.Fanouts(0)
		net.Level(network.NodeID(net.NumNodes() - 1))
	}
}
