package verilog

import (
	"bytes"
	"strings"
	"testing"

	"simgen/internal/genbench"
	"simgen/internal/network"
	"simgen/internal/tt"
)

func TestWriteBasicStructure(t *testing.T) {
	n := network.New("half adder") // space forces sanitization
	a := n.AddPI("a")
	b := n.AddPI("b")
	xor2 := tt.Var(2, 0).Xor(tt.Var(2, 1))
	and2 := tt.Var(2, 0).And(tt.Var(2, 1))
	s := n.AddLUT("sum", []network.NodeID{a, b}, xor2)
	c := n.AddLUT("carry", []network.NodeID{a, b}, and2)
	n.AddPO("s", s)
	n.AddPO("c", c)

	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module half_adder (",
		"input  a,",
		"input  b,",
		"output s,",
		"output c",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Fatalf("missing %q in:\n%s", want, v)
		}
	}
	// XOR SOP: (a & ~b) | (~a & b) in some order.
	if !strings.Contains(v, "~") || !strings.Contains(v, "|") {
		t.Fatalf("sum expression not SOP:\n%s", v)
	}
}

func TestWriteConstantsAndCollisions(t *testing.T) {
	n := network.New("")
	a := n.AddPI("x")
	k := n.AddConst(true)
	inv := tt.Var(1, 0).Not()
	g := n.AddLUT("x", []network.NodeID{a}, inv) // name collides with PI
	n.AddPO("x", g)                              // PO collides too
	n.AddPO("k", k)
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	if !strings.Contains(v, "module top (") {
		t.Fatalf("default module name missing:\n%s", v)
	}
	if !strings.Contains(v, "1'b1") {
		t.Fatalf("constant missing:\n%s", v)
	}
	// All declared identifiers must be unique.
	seen := map[string]bool{}
	for _, line := range strings.Split(v, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 2 && (fields[0] == "wire" || fields[0] == "input" || fields[0] == "output") {
			name := strings.TrimRight(fields[1], ",;")
			if seen[name] {
				t.Fatalf("duplicate identifier %q:\n%s", name, v)
			}
			seen[name] = true
		}
	}
}

func TestWriteBenchmarkParsesStructurally(t *testing.T) {
	// Smoke test on a real benchmark: output is non-trivial and every LUT
	// produced exactly one wire definition.
	b, _ := genbench.ByName("misex3c")
	net, err := b.LUTNetwork()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, net); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	wires := strings.Count(v, "\n  wire ")
	if wires < net.NumLUTs() {
		t.Fatalf("only %d wires for %d LUTs", wires, net.NumLUTs())
	}
	if strings.Count(v, "endmodule") != 1 {
		t.Fatal("malformed module")
	}
}

// TestVerilogSemantics interprets the emitted SOP expressions with a tiny
// evaluator and compares against network simulation — a semantic check
// without an external Verilog simulator.
func TestVerilogSemantics(t *testing.T) {
	n := network.New("sem")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	maj := tt.Var(3, 0).And(tt.Var(3, 1)).Or(tt.Var(3, 0).And(tt.Var(3, 2))).Or(tt.Var(3, 1).And(tt.Var(3, 2)))
	m := n.AddLUT("m", []network.NodeID{a, b, c}, maj)
	n.AddPO("o", m)

	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	// Extract "wire m = <expr>;".
	var expr string
	for _, line := range strings.Split(buf.String(), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "wire m = ") {
			expr = strings.TrimSuffix(strings.TrimPrefix(line, "wire m = "), ";")
		}
	}
	if expr == "" {
		t.Fatalf("wire m not found:\n%s", buf.String())
	}
	for mnt := 0; mnt < 8; mnt++ {
		env := map[string]bool{
			"a": mnt&1 != 0,
			"b": mnt&2 != 0,
			"c": mnt&4 != 0,
		}
		got := evalSOP(t, expr, env)
		ones := 0
		for _, v := range env {
			if v {
				ones++
			}
		}
		if got != (ones >= 2) {
			t.Fatalf("minterm %d: verilog %v, want %v (expr %q)", mnt, got, ones >= 2, expr)
		}
	}
}

// evalSOP evaluates a ( lit & lit ) | ( ... ) expression.
func evalSOP(t *testing.T, expr string, env map[string]bool) bool {
	t.Helper()
	for _, term := range strings.Split(expr, "|") {
		term = strings.Trim(strings.TrimSpace(term), "()")
		val := true
		for _, lit := range strings.Split(term, "&") {
			lit = strings.TrimSpace(lit)
			neg := strings.HasPrefix(lit, "~")
			lit = strings.TrimPrefix(lit, "~")
			v, ok := env[lit]
			if !ok {
				t.Fatalf("unknown identifier %q", lit)
			}
			if neg {
				v = !v
			}
			val = val && v
		}
		if val {
			return true
		}
	}
	return false
}

func TestWriteTestbench(t *testing.T) {
	n := network.New("ha")
	a := n.AddPI("a")
	b := n.AddPI("b")
	xor2 := tt.Var(2, 0).Xor(tt.Var(2, 1))
	and2 := tt.Var(2, 0).And(tt.Var(2, 1))
	n.AddPO("s", n.AddLUT("sum", []network.NodeID{a, b}, xor2))
	n.AddPO("c", n.AddLUT("carry", []network.NodeID{a, b}, and2))
	vectors := [][]bool{
		{false, false}, {true, false}, {false, true}, {true, true},
	}
	var buf bytes.Buffer
	if err := WriteTestbench(&buf, n, vectors); err != nil {
		t.Fatal(err)
	}
	tb := buf.String()
	for _, want := range []string{
		"module ha_tb;",
		"ha dut (",
		".a(in[0])",
		".b(in[1])",
		"check(2'b00, 2'b00);", // 0+0 = s0 c0
		"check(2'b01, 2'b01);", // a=1: s1 c0
		"check(2'b11, 2'b10);", // a=b=1: s0 c1
		"ALL TESTS PASSED",
	} {
		if !strings.Contains(tb, want) {
			t.Fatalf("testbench missing %q:\n%s", want, tb)
		}
	}
}
