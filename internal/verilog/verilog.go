// Package verilog writes LUT networks as synthesizable structural Verilog:
// one `assign` per LUT in sum-of-products form over its fanin wires. The
// output simulates identically to the network in any Verilog simulator,
// giving a path from generated/swept circuits into standard EDA flows.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"simgen/internal/network"
	"simgen/internal/tt"
)

// Write emits the network as a single Verilog module.
func Write(w io.Writer, net *network.Network) error {
	bw := bufio.NewWriter(w)
	name := sanitize(net.Name)
	if name == "" {
		name = "top"
	}

	wireName := make([]string, net.NumNodes())
	used := map[string]bool{}
	uniq := func(base string) string {
		base = sanitize(base)
		if base == "" || used[base] {
			for i := 0; ; i++ {
				cand := fmt.Sprintf("%s_%d", nonEmpty(base, "n"), i)
				if !used[cand] {
					base = cand
					break
				}
			}
		}
		used[base] = true
		return base
	}
	for id := 0; id < net.NumNodes(); id++ {
		nid := network.NodeID(id)
		nd := net.Node(nid)
		base := nd.Name
		if base == "" {
			base = fmt.Sprintf("n%d", id)
		}
		wireName[id] = uniq(base)
	}
	poName := make([]string, net.NumPOs())
	for i, po := range net.POs() {
		poName[i] = uniq(nonEmpty(sanitize(po.Name), fmt.Sprintf("po%d", i)))
	}

	fmt.Fprintf(bw, "module %s (\n", name)
	for _, pi := range net.PIs() {
		fmt.Fprintf(bw, "  input  %s,\n", wireName[pi])
	}
	for i := range net.POs() {
		sep := ","
		if i == net.NumPOs()-1 {
			sep = ""
		}
		fmt.Fprintf(bw, "  output %s%s\n", poName[i], sep)
	}
	fmt.Fprintln(bw, ");")

	for id := 0; id < net.NumNodes(); id++ {
		nid := network.NodeID(id)
		nd := net.Node(nid)
		switch nd.Kind {
		case network.KindConst:
			fmt.Fprintf(bw, "  wire %s = 1'b%d;\n", wireName[id], b2i(nd.Func.IsConst1()))
		case network.KindLUT:
			fmt.Fprintf(bw, "  wire %s = %s;\n", wireName[id], sopExpr(net, nid, wireName))
		}
	}
	for i, po := range net.POs() {
		fmt.Fprintf(bw, "  assign %s = %s;\n", poName[i], wireName[po.Driver])
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// sopExpr renders the node function as a sum of products over its fanins.
func sopExpr(net *network.Network, id network.NodeID, wireName []string) string {
	nd := net.Node(id)
	on := tt.ISOP(nd.Func)
	if len(on) == 0 {
		return "1'b0"
	}
	var terms []string
	for _, cube := range on {
		var lits []string
		for i, f := range nd.Fanins {
			v, cared := cube.Has(i)
			if !cared {
				continue
			}
			lit := wireName[f]
			if !v {
				lit = "~" + lit
			}
			lits = append(lits, lit)
		}
		if len(lits) == 0 {
			return "1'b1" // tautology cube
		}
		terms = append(terms, strings.Join(lits, " & "))
	}
	if len(terms) == 1 {
		return terms[0]
	}
	for i, t := range terms {
		terms[i] = "(" + t + ")"
	}
	return strings.Join(terms, " | ")
}

// sanitize turns arbitrary signal names into Verilog identifiers.
func sanitize(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func nonEmpty(s, alt string) string {
	if s == "" {
		return alt
	}
	return s
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
