package verilog

import (
	"bufio"
	"fmt"
	"io"

	"simgen/internal/network"
	"simgen/internal/sim"
)

// WriteTestbench emits a self-checking Verilog testbench that applies the
// given vectors to the module produced by Write and compares every output
// against the golden values computed by this repository's simulator. Run it
// in any Verilog simulator to cross-validate the two implementations:
//
//	iverilog -o tb design.v design_tb.v && ./tb
func WriteTestbench(w io.Writer, net *network.Network, vectors [][]bool) error {
	bw := bufio.NewWriter(w)
	name := sanitize(net.Name)
	if name == "" {
		name = "top"
	}

	// Recompute the identifier assignment exactly as Write does.
	wireName := make([]string, net.NumNodes())
	used := map[string]bool{}
	uniq := func(base string) string {
		base = sanitize(base)
		if base == "" || used[base] {
			for i := 0; ; i++ {
				cand := fmt.Sprintf("%s_%d", nonEmpty(base, "n"), i)
				if !used[cand] {
					base = cand
					break
				}
			}
		}
		used[base] = true
		return base
	}
	for id := 0; id < net.NumNodes(); id++ {
		nd := net.Node(network.NodeID(id))
		base := nd.Name
		if base == "" {
			base = fmt.Sprintf("n%d", id)
		}
		wireName[id] = uniq(base)
	}
	poName := make([]string, net.NumPOs())
	for i, po := range net.POs() {
		poName[i] = uniq(nonEmpty(sanitize(po.Name), fmt.Sprintf("po%d", i)))
	}

	npis, npos := net.NumPIs(), net.NumPOs()
	fmt.Fprintf(bw, "`timescale 1ns/1ps\nmodule %s_tb;\n", name)
	fmt.Fprintf(bw, "  reg  [%d:0] in;\n", npis-1)
	fmt.Fprintf(bw, "  wire [%d:0] out;\n", npos-1)
	fmt.Fprintf(bw, "  integer errors = 0;\n\n")
	fmt.Fprintf(bw, "  %s dut (\n", name)
	for i, pi := range net.PIs() {
		fmt.Fprintf(bw, "    .%s(in[%d]),\n", wireName[pi], i)
	}
	for i := 0; i < npos; i++ {
		sep := ","
		if i == npos-1 {
			sep = ""
		}
		fmt.Fprintf(bw, "    .%s(out[%d])%s\n", poName[i], i, sep)
	}
	fmt.Fprintln(bw, "  );")

	fmt.Fprintln(bw, "\n  task check;")
	fmt.Fprintf(bw, "    input [%d:0] stimulus;\n", npis-1)
	fmt.Fprintf(bw, "    input [%d:0] expected;\n", npos-1)
	fmt.Fprintln(bw, "    begin")
	fmt.Fprintln(bw, "      in = stimulus; #1;")
	fmt.Fprintln(bw, "      if (out !== expected) begin")
	bw.WriteString("        $display(\"MISMATCH in=%b out=%b expected=%b\", stimulus, out, expected);\n")
	fmt.Fprintln(bw, "        errors = errors + 1;")
	fmt.Fprintln(bw, "      end")
	fmt.Fprintln(bw, "    end")
	fmt.Fprintln(bw, "  endtask")

	fmt.Fprintln(bw, "\n  initial begin")
	for _, vec := range vectors {
		golden := sim.SimulateVector(net, vec)
		fmt.Fprintf(bw, "    check(%d'b", npis)
		for i := npis - 1; i >= 0; i-- {
			fmt.Fprint(bw, b2i(vec[i]))
		}
		fmt.Fprintf(bw, ", %d'b", npos)
		for i := npos - 1; i >= 0; i-- {
			fmt.Fprint(bw, b2i(golden[net.POs()[i].Driver]))
		}
		fmt.Fprintln(bw, ");")
	}
	fmt.Fprintln(bw, "    if (errors == 0) $display(\"ALL TESTS PASSED\");")
	bw.WriteString("    else $display(\"%0d MISMATCHES\", errors);\n")
	fmt.Fprintln(bw, "    $finish;")
	fmt.Fprintln(bw, "  end")
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}
