package sat

import (
	"math/rand"
	"testing"
)

// bruteForce determines satisfiability of a CNF over nvars variables by
// enumeration.
func bruteForce(nvars int, cnf [][]Lit) (bool, uint32) {
	for m := uint32(0); m < 1<<uint(nvars); m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				v := m&(1<<uint(l.Var())) != 0
				if v != l.IsNeg() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true, m
		}
	}
	return false, 0
}

func solveCNF(nvars int, cnf [][]Lit) (*Solver, Status) {
	s := New()
	for i := 0; i < nvars; i++ {
		s.NewVar()
	}
	for _, cl := range cnf {
		if !s.AddClause(cl...) {
			return s, Unsat
		}
	}
	return s, s.Solve()
}

func checkModel(t *testing.T, s *Solver, cnf [][]Lit) {
	t.Helper()
	for _, cl := range cnf {
		sat := false
		for _, l := range cl {
			if s.Value(l.Var()) != l.IsNeg() {
				sat = true
				break
			}
		}
		if !sat {
			t.Fatalf("model violates clause %v", cl)
		}
	}
}

func TestTrivialCases(t *testing.T) {
	s := New()
	if s.Solve() != Sat {
		t.Fatal("empty formula should be SAT")
	}
	v := s.NewVar()
	if !s.AddClause(MkLit(v, false)) {
		t.Fatal("unit clause rejected")
	}
	if s.Solve() != Sat || !s.Value(v) {
		t.Fatal("unit not satisfied")
	}
	if s.AddClause(MkLit(v, true)) {
		t.Fatal("contradicting unit accepted")
	}
	if s.Solve() != Unsat {
		t.Fatal("contradiction not detected")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Fatal("empty clause accepted")
	}
	if s.Solve() != Unsat {
		t.Fatal("empty clause should be UNSAT")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	if !s.AddClause(MkLit(a, false), MkLit(a, true)) {
		t.Fatal("tautology rejected")
	}
	if !s.AddClause(MkLit(b, false), MkLit(b, false)) {
		t.Fatal("duplicate-literal clause rejected")
	}
	if s.Solve() != Sat || !s.Value(b) {
		t.Fatal("dedup broke semantics")
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	// x0 & (x0->x1) & (x1->x2) & ... & (xn-1 -> xn): all true.
	s := New()
	n := 50
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(MkLit(vars[0], false))
	for i := 0; i+1 < n; i++ {
		s.AddClause(MkLit(vars[i], true), MkLit(vars[i+1], false))
	}
	if s.Solve() != Sat {
		t.Fatal("chain should be SAT")
	}
	for i := range vars {
		if !s.Value(vars[i]) {
			t.Fatalf("var %d should be true", i)
		}
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons into n holes is UNSAT. Classic hard family;
	// n=6 keeps runtime reasonable while forcing real conflict analysis.
	n := 6
	s := New()
	v := make([][]int, n+1)
	for p := range v {
		v[p] = make([]int, n)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		cl := make([]Lit, n)
		for h := 0; h < n; h++ {
			cl[h] = MkLit(v[p][h], false)
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(v[p1][h], true), MkLit(v[p2][h], true))
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(%d,%d) = %v, want UNSAT", n+1, n, got)
	}
	if s.Stats.Conflicts == 0 {
		t.Fatal("expected nontrivial conflict analysis")
	}
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nvars := 3 + rng.Intn(10)
		nclauses := 2 + rng.Intn(nvars*5)
		cnf := make([][]Lit, nclauses)
		for i := range cnf {
			width := 1 + rng.Intn(3)
			cl := make([]Lit, width)
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nvars), rng.Intn(2) == 1)
			}
			cnf[i] = cl
		}
		wantSat, _ := bruteForce(nvars, cnf)
		s, got := solveCNF(nvars, cnf)
		if (got == Sat) != wantSat {
			t.Fatalf("trial %d: solver=%v bruteforce sat=%v\ncnf=%v", trial, got, wantSat, cnf)
		}
		if got == Sat {
			checkModel(t, s, cnf)
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	// a -> b
	s.AddClause(MkLit(a, true), MkLit(b, false))
	if s.Solve(MkLit(a, false), MkLit(b, true)) != Unsat {
		t.Fatal("a & !b should be UNSAT under a->b")
	}
	if s.Solve(MkLit(a, false)) != Sat {
		t.Fatal("a alone should be SAT")
	}
	if !s.Value(a) || !s.Value(b) {
		t.Fatal("model should satisfy assumption and implication")
	}
	// Assumptions don't persist.
	if s.Solve(MkLit(b, true)) != Sat {
		t.Fatal("!b should be SAT")
	}
	if s.Value(b) {
		t.Fatal("assumption !b violated")
	}
}

func TestAssumptionsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		nvars := 4 + rng.Intn(6)
		nclauses := 2 + rng.Intn(nvars*4)
		cnf := make([][]Lit, nclauses)
		for i := range cnf {
			cl := make([]Lit, 1+rng.Intn(3))
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nvars), rng.Intn(2) == 1)
			}
			cnf[i] = cl
		}
		nass := 1 + rng.Intn(2)
		assumed := map[int]bool{}
		var assumptions []Lit
		for len(assumptions) < nass {
			v := rng.Intn(nvars)
			if assumed[v] {
				continue
			}
			assumed[v] = true
			assumptions = append(assumptions, MkLit(v, rng.Intn(2) == 1))
		}
		// Brute force with assumptions appended as units.
		full := append([][]Lit{}, cnf...)
		for _, a := range assumptions {
			full = append(full, []Lit{a})
		}
		wantSat, _ := bruteForce(nvars, full)

		s := New()
		for i := 0; i < nvars; i++ {
			s.NewVar()
		}
		ok := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				ok = false
				break
			}
		}
		var got Status
		if !ok {
			got = Unsat
		} else {
			got = s.Solve(assumptions...)
		}
		if (got == Sat) != wantSat {
			t.Fatalf("trial %d: solver=%v want sat=%v\ncnf=%v assume=%v", trial, got, wantSat, cnf, assumptions)
		}
		if got == Sat {
			checkModel(t, s, full)
		}
	}
}

func TestIncrementalSolving(t *testing.T) {
	// Solve, add a blocking clause, solve again — the counterexample
	// refinement pattern used by SAT sweeping.
	s := New()
	nvars := 6
	for i := 0; i < nvars; i++ {
		s.NewVar()
	}
	s.AddClause(MkLit(0, false), MkLit(1, false))
	models := map[uint32]bool{}
	count := 0
	for s.Solve() == Sat {
		var m uint32
		block := make([]Lit, nvars)
		for v := 0; v < nvars; v++ {
			if s.Value(v) {
				m |= 1 << uint(v)
			}
			block[v] = MkLit(v, s.Value(v))
		}
		if models[m] {
			t.Fatalf("model %b repeated", m)
		}
		models[m] = true
		count++
		if count > 64 {
			t.Fatal("too many models")
		}
		if !s.AddClause(block...) {
			break
		}
	}
	// x0|x1 over 6 vars has 3 * 16 = 48 models.
	if count != 48 {
		t.Fatalf("enumerated %d models, want 48", count)
	}
}

func TestConflictBudget(t *testing.T) {
	// A hard pigeonhole instance with a tiny budget must return Unknown.
	n := 8
	s := New()
	v := make([][]int, n+1)
	for p := range v {
		v[p] = make([]int, n)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		cl := make([]Lit, n)
		for h := 0; h < n; h++ {
			cl[h] = MkLit(v[p][h], false)
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(v[p1][h], true), MkLit(v[p2][h], true))
			}
		}
	}
	s.ConflictBudget = 10
	if got := s.Solve(); got != Unknown {
		t.Fatalf("budgeted solve = %v, want Unknown", got)
	}
}

func TestXorChainUnsat(t *testing.T) {
	// Tseitin-style XOR chain with odd parity constraint twice -> UNSAT.
	// x1^x2 = t1, t1^x3 = t2, assert t2 and !t2 via clauses.
	s := New()
	x1, x2, x3 := s.NewVar(), s.NewVar(), s.NewVar()
	t1, t2 := s.NewVar(), s.NewVar()
	addXor := func(out, a, b int) {
		s.AddClause(MkLit(out, true), MkLit(a, false), MkLit(b, false))
		s.AddClause(MkLit(out, true), MkLit(a, true), MkLit(b, true))
		s.AddClause(MkLit(out, false), MkLit(a, false), MkLit(b, true))
		s.AddClause(MkLit(out, false), MkLit(a, true), MkLit(b, false))
	}
	addXor(t1, x1, x2)
	addXor(t2, t1, x3)
	s.AddClause(MkLit(t2, false))
	if s.Solve() != Sat {
		t.Fatal("parity formula should be SAT")
	}
	s.AddClause(MkLit(t2, true))
	if s.Solve() != Unsat {
		t.Fatal("t2 & !t2 should be UNSAT")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := New()
	nvars := 30
	for i := 0; i < nvars; i++ {
		s.NewVar()
	}
	for i := 0; i < 120; i++ {
		cl := make([]Lit, 3)
		for j := range cl {
			cl[j] = MkLit(rng.Intn(nvars), rng.Intn(2) == 1)
		}
		if !s.AddClause(cl...) {
			break
		}
	}
	s.Solve()
	if s.Stats.Decisions == 0 && s.Stats.Propagations == 0 {
		t.Fatal("stats not collected")
	}
}

func TestLitHelpers(t *testing.T) {
	l := MkLit(3, true)
	if l.Var() != 3 || !l.IsNeg() || l.Not().IsNeg() {
		t.Fatal("lit helpers wrong")
	}
	if l.String() != "-4" || l.Not().String() != "4" {
		t.Fatalf("lit strings: %s %s", l, l.Not())
	}
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("status strings wrong")
	}
}

func TestLearntClauseSoundness(t *testing.T) {
	// Every learnt clause must be logically implied by the input CNF.
	// This regression-tests the seen-bit bookkeeping in analyze: stale
	// seen flags from minimization once dropped literals from later
	// learnt clauses.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		nvars := 5 + rng.Intn(5)
		var cnf [][]Lit
		s := New()
		for i := 0; i < nvars; i++ {
			s.NewVar()
		}
		s.onLearn = func(learnt []Lit) {
			test := append([][]Lit{}, cnf...)
			for _, l := range learnt {
				test = append(test, []Lit{l.Not()})
			}
			if ok, m := bruteForce(nvars, test); ok {
				t.Fatalf("trial %d: unsound learnt clause %v (model %b)", trial, learnt, m)
			}
		}
		nclauses := nvars * 4
		ok := true
		for i := 0; i < nclauses && ok; i++ {
			cl := make([]Lit, 2+rng.Intn(2))
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nvars), rng.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
			ok = s.AddClause(cl...)
		}
		// Solve repeatedly with model blocking to force incremental reuse.
		for rounds := 0; ok && rounds < 10 && s.Solve() == Sat; rounds++ {
			block := make([]Lit, nvars)
			for v := 0; v < nvars; v++ {
				block[v] = MkLit(v, s.Value(v))
			}
			cnf = append(cnf, block)
			ok = s.AddClause(block...)
		}
	}
}

func buildPigeonhole(n int) *Solver {
	s := New()
	v := make([][]int, n+1)
	for p := range v {
		v[p] = make([]int, n)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		cl := make([]Lit, n)
		for h := 0; h < n; h++ {
			cl[h] = MkLit(v[p][h], false)
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(v[p1][h], true), MkLit(v[p2][h], true))
			}
		}
	}
	return s
}

func TestPigeonholeHardTriggersReduceDB(t *testing.T) {
	if testing.Short() {
		t.Skip("hard instance")
	}
	// PHP(9,8) needs enough conflicts to trip the learned-clause database
	// reduction, exercising rebuildWithout and the watcher remapping.
	s := buildPigeonhole(8)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(9,8) = %v, want UNSAT", got)
	}
	if s.Stats.Learnt < 1000 {
		t.Skipf("only %d learnt clauses; reduceDB likely untriggered", s.Stats.Learnt)
	}
}
