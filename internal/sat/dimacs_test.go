package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestParseDIMACSBasic(t *testing.T) {
	src := `c sample
p cnf 3 3
1 2 0
-1 3 0
-2 -3 0
`
	s, nvars, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nvars != 3 {
		t.Fatalf("nvars = %d", nvars)
	}
	if s.Solve() != Sat {
		t.Fatal("satisfiable formula reported UNSAT")
	}
	// Model check: (1|2) & (!1|3) & (!2|!3)
	v1, v2, v3 := s.Value(0), s.Value(1), s.Value(2)
	if !(v1 || v2) || !(!v1 || v3) || !(!v2 || !v3) {
		t.Fatal("model invalid")
	}
}

func TestParseDIMACSUnsat(t *testing.T) {
	src := "p cnf 1 2\n1 0\n-1 0\n"
	s, _, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Unsat {
		t.Fatal("contradiction not detected")
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"p cnf x 3\n1 0\n",
		"p dnf 3 3\n1 0\n",
		"p cnf 3\n",
		"1 2 0\n", // no problem line
		"p cnf 2 1\n1 z 0\n",
	}
	for i, src := range cases {
		if _, _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParseDIMACSImplicitVars(t *testing.T) {
	// Literals may reference variables beyond the declared count (some
	// generators are sloppy); the parser grows the solver.
	src := "p cnf 2 1\n1 5 0\n"
	s, _, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() < 5 {
		t.Fatalf("vars = %d, want >= 5", s.NumVars())
	}
	if s.Solve() != Sat {
		t.Fatal("should be SAT")
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		nvars := 3 + rng.Intn(8)
		var cnf [][]Lit
		for i := 0; i < nvars*3; i++ {
			cl := make([]Lit, 1+rng.Intn(3))
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nvars), rng.Intn(2) == 1)
			}
			cnf = append(cnf, cl)
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, nvars, cnf); err != nil {
			t.Fatal(err)
		}
		s, nv, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if nv != nvars {
			t.Fatalf("nvars round-trip: %d vs %d", nv, nvars)
		}
		wantSat, _ := bruteForce(nvars, cnf)
		got := s.Solve()
		if (got == Sat) != wantSat {
			t.Fatalf("trial %d: round-trip changed satisfiability", trial)
		}
	}
}
