package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in DIMACS format into a fresh solver.
// It returns the solver and the number of variables declared in the
// problem line. Standard "c" comments and the optional trailing "%" / "0"
// markers of SATLIB files are tolerated.
func ParseDIMACS(r io.Reader) (*Solver, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	s := New()
	declared := -1
	var clause []Lit
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") || line == "%" {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, 0, fmt.Errorf("dimacs:%d: malformed problem line %q", lineno, line)
			}
			nv, err1 := strconv.Atoi(fields[2])
			_, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv < 0 {
				return nil, 0, fmt.Errorf("dimacs:%d: bad problem counts", lineno)
			}
			declared = nv
			for s.NumVars() < nv {
				s.NewVar()
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, 0, fmt.Errorf("dimacs:%d: bad literal %q", lineno, tok)
			}
			if v == 0 {
				s.AddClause(clause...)
				clause = clause[:0]
				continue
			}
			idx := v
			if idx < 0 {
				idx = -idx
			}
			for s.NumVars() < idx {
				s.NewVar()
			}
			clause = append(clause, MkLit(idx-1, v < 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if len(clause) > 0 {
		s.AddClause(clause...)
	}
	if declared < 0 {
		return nil, 0, fmt.Errorf("dimacs: missing problem line")
	}
	return s, declared, nil
}

// WriteDIMACS emits a CNF in DIMACS format.
func WriteDIMACS(w io.Writer, nvars int, clauses [][]Lit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", nvars, len(clauses))
	for _, cl := range clauses {
		for _, l := range cl {
			v := l.Var() + 1
			if l.IsNeg() {
				v = -v
			}
			fmt.Fprintf(bw, "%d ", v)
		}
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}
