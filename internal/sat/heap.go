package sat

// varHeap is an indexed max-heap over variable activities, used for VSIDS
// branching. It points at the solver's activity slice so bumps reorder the
// heap through update.
type varHeap struct {
	activity *[]float64
	heap     []int // heap of variable indices
	indices  []int // position of each variable in heap, -1 when absent
}

func newVarHeap(activity *[]float64) *varHeap {
	return &varHeap{activity: activity}
}

func (h *varHeap) less(i, j int) bool {
	a := *h.activity
	return a[h.heap[i]] > a[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.indices[h.heap[i]] = i
	h.indices[h.heap[j]] = j
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

// push inserts a new variable (assumed not present).
func (h *varHeap) push(v int) {
	for len(h.indices) <= v {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

// pushIfAbsent reinserts a variable after backtracking.
func (h *varHeap) pushIfAbsent(v int) { h.push(v) }

// pop removes and returns the most active variable.
func (h *varHeap) pop() (int, bool) {
	if len(h.heap) == 0 {
		return -1, false
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.indices[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v, true
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v int) {
	if v < len(h.indices) && h.indices[v] >= 0 {
		h.up(h.indices[v])
	}
}
