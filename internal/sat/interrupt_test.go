package sat

import (
	"context"
	"testing"
	"time"
)

// php builds the (unsatisfiable) pigeonhole problem PHP(n+1, n) — the
// standard hard instance family for budget and interrupt tests.
func php(n int) *Solver {
	s := New()
	v := make([][]int, n+1)
	for p := range v {
		v[p] = make([]int, n)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p <= n; p++ {
		cl := make([]Lit, n)
		for h := 0; h < n; h++ {
			cl[h] = MkLit(v[p][h], false)
		}
		s.AddClause(cl...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(v[p1][h], true), MkLit(v[p2][h], true))
			}
		}
	}
	return s
}

func TestPropagationBudget(t *testing.T) {
	s := php(7)
	s.PropagationBudget = 2000
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve under tiny propagation budget = %v, want Unknown", got)
	}
	// The budget is per call: lifting it must let the same solver finish.
	s.PropagationBudget = 0
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve after lifting the budget = %v, want UNSAT", got)
	}
}

func TestInterruptBeforeSolve(t *testing.T) {
	s := php(6)
	s.Interrupt()
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve after Interrupt = %v, want Unknown", got)
	}
	// The flag is sticky until cleared.
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve with pending interrupt = %v, want Unknown", got)
	}
	s.ClearInterrupt()
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve after ClearInterrupt = %v, want UNSAT", got)
	}
}

func TestInterruptMidSolve(t *testing.T) {
	// PHP(10,9) takes far longer than the interrupt delay; the solver must
	// come back with Unknown well before it could finish.
	s := php(9)
	go func() {
		time.Sleep(20 * time.Millisecond)
		s.Interrupt()
	}()
	start := time.Now()
	got := s.Solve()
	elapsed := time.Since(start)
	if got != Unknown {
		t.Fatalf("interrupted Solve = %v, want Unknown", got)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("interrupt took %v to be honored", elapsed)
	}
}

func TestWatchContextDeadline(t *testing.T) {
	s := php(9)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	stop := s.WatchContext(ctx)
	defer stop()
	start := time.Now()
	got := s.Solve()
	if got != Unknown {
		t.Fatalf("Solve past deadline = %v, want Unknown", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to be honored", elapsed)
	}
	if !s.Interrupted() {
		t.Fatal("watcher did not leave the interrupt flag set")
	}
}

func TestWatchContextStopReleasesWatcher(t *testing.T) {
	s := New()
	ctx, cancel := context.WithCancel(context.Background())
	stop := s.WatchContext(ctx)
	stop()
	cancel()
	// Give a leaked watcher a chance to (incorrectly) fire.
	time.Sleep(5 * time.Millisecond)
	if s.Interrupted() {
		t.Fatal("stopped watcher still interrupted the solver")
	}
}

func TestWatchContextBackgroundIsNoop(t *testing.T) {
	s := php(5)
	stop := s.WatchContext(context.Background())
	defer stop()
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve under background context = %v, want UNSAT", got)
	}
}
