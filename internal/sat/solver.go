// Package sat implements a CDCL (conflict-driven clause learning) Boolean
// satisfiability solver in the MiniSat tradition: two-literal watches,
// VSIDS variable activity, first-UIP conflict analysis with clause
// minimization, phase saving, Luby restarts, and learned-clause database
// reduction. It is the verification engine behind SAT sweeping.
package sat

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Lit is a solver literal: 2*variable + sign, where sign 1 means negated.
type Lit int32

// MkLit builds a literal from a zero-based variable index.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// IsNeg reports whether the literal is negated.
func (l Lit) IsNeg() bool { return l&1 != 0 }

// Not returns the complemented literal.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.IsNeg() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// Status is the result of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

const (
	valueUnassigned int8 = -1
	valueFalse      int8 = 0
	valueTrue       int8 = 1
)

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
	lbd      int32
}

type watcher struct {
	clauseRef int32
	blocker   Lit
}

// Stats counts solver work, exposed for the sweeping instrumentation.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learnt       int64
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses []clause
	watches [][]watcher // indexed by literal

	assigns  []int8
	level    []int32
	reason   []int32 // clause ref or -1
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap
	phase    []bool

	claInc      float64
	maxLearnt   float64
	learntCount int

	seen      []bool
	analyzeTo []Lit

	// ConflictBudget, when positive, bounds the number of conflicts per
	// Solve call; exceeding it yields Unknown.
	ConflictBudget int64

	// PropagationBudget, when positive, bounds the number of unit
	// propagations per Solve call; exceeding it yields Unknown. It is the
	// wall-clock-proportional budget (propagations dominate runtime),
	// complementing ConflictBudget's difficulty-proportional one.
	PropagationBudget int64

	// interrupted is an asynchronous stop request, safe to set from another
	// goroutine (Interrupt). Solve polls it every interruptCheckEvery
	// propagations and returns Unknown promptly once it is set. The flag is
	// sticky: it stays set (and keeps Solve returning Unknown) until
	// ClearInterrupt.
	interrupted atomic.Bool

	Stats Stats

	// onLearn, when set, observes every learnt clause (testing hook).
	onLearn func([]Lit)

	unsat bool // set when the clause set is trivially contradictory
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{
		varInc: 1.0,
		claInc: 1.0,
	}
	s.order = newVarHeap(&s.activity)
	return s
}

// NumVars returns the number of variables created.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NewVar creates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, valueUnassigned)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, -1)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

func (s *Solver) litValue(l Lit) int8 {
	a := s.assigns[l.Var()]
	if a == valueUnassigned {
		return valueUnassigned
	}
	if l.IsNeg() {
		return 1 - a
	}
	return a
}

// AddClause adds a clause at decision level 0. It returns false when the
// formula became trivially unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	s.cancelUntil(0)
	// Sort, dedup, drop false literals, detect tautologies and satisfied
	// clauses.
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = -1
	for _, l := range ls {
		if int(l.Var()) >= s.NumVars() {
			panic(fmt.Sprintf("sat: literal %v references unknown variable", l))
		}
		if l == prev {
			continue
		}
		if prev >= 0 && l == prev.Not() {
			return true // tautology
		}
		switch s.litValue(l) {
		case valueTrue:
			return true // already satisfied
		case valueFalse:
			continue // drop
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		s.uncheckedEnqueue(out[0], -1)
		if s.propagate() >= 0 {
			s.unsat = true
			return false
		}
		return true
	}
	s.attachClause(clause{lits: append([]Lit(nil), out...)})
	return true
}

func (s *Solver) attachClause(c clause) int32 {
	ref := int32(len(s.clauses))
	s.clauses = append(s.clauses, c)
	lits := s.clauses[ref].lits
	s.watches[lits[0].Not()] = append(s.watches[lits[0].Not()], watcher{ref, lits[1]})
	s.watches[lits[1].Not()] = append(s.watches[lits[1].Not()], watcher{ref, lits[0]})
	if c.learnt {
		s.learntCount++
	}
	return ref
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) uncheckedEnqueue(l Lit, from int32) {
	v := l.Var()
	if l.IsNeg() {
		s.assigns[v] = valueFalse
	} else {
		s.assigns[v] = valueTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the ref of a conflicting
// clause or -1.
func (s *Solver) propagate() int32 {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++

		ws := s.watches[p]
		kept := ws[:0]
		conflict := int32(-1)
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if s.litValue(w.blocker) == valueTrue {
				kept = append(kept, w)
				continue
			}
			c := &s.clauses[w.clauseRef]
			lits := c.lits
			// Ensure the false literal is lits[1].
			if lits[0] == p.Not() {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.litValue(first) == valueTrue {
				kept = append(kept, watcher{w.clauseRef, first})
				continue
			}
			// Search a new watch.
			found := false
			for k := 2; k < len(lits); k++ {
				if s.litValue(lits[k]) != valueFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.watches[lits[1].Not()] = append(s.watches[lits[1].Not()], watcher{w.clauseRef, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{w.clauseRef, first})
			if s.litValue(first) == valueFalse {
				conflict = w.clauseRef
				// Copy remaining watchers and stop.
				kept = append(kept, ws[wi+1:]...)
				s.qhead = len(s.trail)
				break
			}
			s.uncheckedEnqueue(first, w.clauseRef)
		}
		s.watches[p] = kept
		if conflict >= 0 {
			return conflict
		}
	}
	return -1
}

// analyze performs first-UIP learning; it fills s.analyzeTo with the learnt
// clause (asserting literal first) and returns the backtrack level and the
// clause LBD.
func (s *Solver) analyze(confl int32) (int, int32) {
	s.analyzeTo = s.analyzeTo[:0]
	s.analyzeTo = append(s.analyzeTo, 0) // placeholder for the UIP
	pathC := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		c := &s.clauses[confl]
		if c.learnt {
			s.bumpClause(confl)
		}
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				pathC++
			} else {
				s.analyzeTo = append(s.analyzeTo, q)
			}
		}
		// Select next literal on the trail to expand.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		pathC--
		if pathC == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	s.analyzeTo[0] = p.Not()

	// Clause minimization: drop literals implied by the rest.
	marked := make(map[int]bool, len(s.analyzeTo))
	for _, l := range s.analyzeTo {
		marked[l.Var()] = true
	}
	toClear := append([]Lit(nil), s.analyzeTo...)
	out := s.analyzeTo[:1]
	for _, l := range s.analyzeTo[1:] {
		r := s.reason[l.Var()]
		if r < 0 {
			out = append(out, l)
			continue
		}
		redundant := true
		for _, q := range s.clauses[r].lits {
			if q.Var() == l.Var() {
				continue
			}
			if !marked[q.Var()] && s.level[q.Var()] != 0 {
				redundant = false
				break
			}
		}
		if !redundant {
			out = append(out, l)
		}
	}
	s.analyzeTo = out

	// Clear seen flags, including literals dropped by minimization — stale
	// seen bits would silently drop literals from future learnt clauses.
	for _, l := range toClear {
		s.seen[l.Var()] = false
	}

	// Compute backtrack level and LBD.
	btLevel := 0
	if len(s.analyzeTo) > 1 {
		maxI := 1
		for i := 2; i < len(s.analyzeTo); i++ {
			if s.level[s.analyzeTo[i].Var()] > s.level[s.analyzeTo[maxI].Var()] {
				maxI = i
			}
		}
		s.analyzeTo[1], s.analyzeTo[maxI] = s.analyzeTo[maxI], s.analyzeTo[1]
		btLevel = int(s.level[s.analyzeTo[1].Var()])
	}
	levels := map[int32]bool{}
	for _, l := range s.analyzeTo {
		levels[s.level[l.Var()]] = true
	}
	return btLevel, int32(len(levels))
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) decayVar() { s.varInc /= 0.95 }

func (s *Solver) bumpClause(ref int32) {
	c := &s.clauses[ref]
	c.activity += s.claInc
	if c.activity > 1e20 {
		for i := range s.clauses {
			if s.clauses[i].learnt {
				s.clauses[i].activity *= 1e-20
			}
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayClause() { s.claInc /= 0.999 }

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[lvl]; i-- {
		l := s.trail[i]
		v := l.Var()
		s.phase[v] = !l.IsNeg()
		s.assigns[v] = valueUnassigned
		s.reason[v] = -1
		s.order.pushIfAbsent(v)
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchVar() int {
	for {
		v, ok := s.order.pop()
		if !ok {
			return -1
		}
		if s.assigns[v] == valueUnassigned {
			return v
		}
	}
}

// reduceDB removes the less active half of the learned clauses.
func (s *Solver) reduceDB() {
	type entry struct {
		ref int32
		act float64
		lbd int32
	}
	var learnts []entry
	for i := range s.clauses {
		if s.clauses[i].learnt && len(s.clauses[i].lits) > 2 {
			learnts = append(learnts, entry{int32(i), s.clauses[i].activity, s.clauses[i].lbd})
		}
	}
	sort.Slice(learnts, func(i, j int) bool {
		if learnts[i].lbd != learnts[j].lbd {
			return learnts[i].lbd > learnts[j].lbd
		}
		return learnts[i].act < learnts[j].act
	})
	remove := map[int32]bool{}
	for _, e := range learnts[:len(learnts)/2] {
		if s.locked(e.ref) {
			continue
		}
		remove[e.ref] = true
	}
	if len(remove) == 0 {
		return
	}
	s.rebuildWithout(remove)
}

// locked reports whether a clause is the reason of a current assignment.
func (s *Solver) locked(ref int32) bool {
	lits := s.clauses[ref].lits
	if len(lits) == 0 {
		return false
	}
	v := lits[0].Var()
	return s.reason[v] == ref && s.assigns[v] != valueUnassigned
}

// rebuildWithout compacts the clause database, dropping the given refs and
// remapping watches and reasons.
func (s *Solver) rebuildWithout(remove map[int32]bool) {
	remap := make([]int32, len(s.clauses))
	var out []clause
	for i := range s.clauses {
		if remove[int32(i)] {
			remap[i] = -1
			if s.clauses[i].learnt {
				s.learntCount--
			}
			continue
		}
		remap[i] = int32(len(out))
		out = append(out, s.clauses[i])
	}
	s.clauses = out
	for v := range s.reason {
		if r := s.reason[v]; r >= 0 {
			s.reason[v] = remap[r]
		}
	}
	for l := range s.watches {
		ws := s.watches[l][:0]
		for _, w := range s.watches[l] {
			if nr := remap[w.clauseRef]; nr >= 0 {
				ws = append(ws, watcher{nr, w.blocker})
			}
		}
		s.watches[l] = ws
	}
}

// interruptCheckEvery is how many propagations pass between polls of the
// interrupt flag and the propagation budget inside Solve. Polling an atomic
// this often costs well under 1% of solve time while bounding the response
// latency to an interrupt by a few microseconds of propagation work.
const interruptCheckEvery = 1024

// Interrupt asynchronously requests that the current (and any subsequent)
// Solve call stop and return Unknown. It is safe to call from another
// goroutine; the flag is sticky until ClearInterrupt.
func (s *Solver) Interrupt() { s.interrupted.Store(true) }

// SetBudget sets both per-call budgets at once (0 = unlimited) — the one
// call a proof engine needs per Solve.
func (s *Solver) SetBudget(conflicts, propagations int64) {
	s.ConflictBudget = conflicts
	s.PropagationBudget = propagations
}

// ClearInterrupt re-arms the solver after an Interrupt.
func (s *Solver) ClearInterrupt() { s.interrupted.Store(false) }

// Interrupted reports whether an interrupt is pending.
func (s *Solver) Interrupted() bool { return s.interrupted.Load() }

// WatchContext interrupts the solver as soon as ctx is cancelled or its
// deadline passes. It returns a stop function that releases the watcher
// goroutine; callers must invoke it (typically via defer) when the solving
// phase ends. The interrupt flag is NOT cleared by stop — a cancelled
// context leaves the solver interrupted, so later Solve calls keep
// returning Unknown, which is what an abandoned run wants.
func (s *Solver) WatchContext(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	quit := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			// When cancellation and stop race (both channels ready before
			// this goroutine was scheduled), stop wins: the solving phase
			// is already over and must not be poisoned retroactively.
			select {
			case <-quit:
				return
			default:
			}
			s.Interrupt()
		case <-quit:
		}
	}()
	return func() { close(quit) }
}

// luby computes the Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(x int64) int64 {
	size, seq := int64(1), 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return 1 << uint(seq)
}

// Solve searches for a model under the given assumptions. It returns Sat,
// Unsat, or Unknown when the conflict or propagation budget is exhausted or
// the solver is interrupted (Interrupt / WatchContext).
func (s *Solver) Solve(assumptions ...Lit) Status {
	if s.unsat {
		return Unsat
	}
	if s.interrupted.Load() {
		return Unknown
	}
	s.cancelUntil(0)
	if s.propagate() >= 0 {
		s.unsat = true
		return Unsat
	}

	restartBase := int64(100)
	var restartNum int64
	conflictsAtStart := s.Stats.Conflicts
	propsAtStart := s.Stats.Propagations
	nextPoll := s.Stats.Propagations + interruptCheckEvery
	conflictLimit := restartBase * luby(restartNum)
	conflictsThisRestart := int64(0)
	if s.maxLearnt == 0 {
		s.maxLearnt = math.Max(1000, float64(len(s.clauses))/3)
	}

	for {
		if s.Stats.Propagations >= nextPoll {
			nextPoll = s.Stats.Propagations + interruptCheckEvery
			if s.interrupted.Load() ||
				(s.PropagationBudget > 0 && s.Stats.Propagations-propsAtStart >= s.PropagationBudget) {
				s.cancelUntil(0)
				return Unknown
			}
		}
		confl := s.propagate()
		if confl >= 0 {
			s.Stats.Conflicts++
			conflictsThisRestart++
			if s.decisionLevel() == 0 {
				s.unsat = true
				return Unsat
			}
			btLevel, lbd := s.analyze(confl)
			s.cancelUntil(btLevel)
			learnt := append([]Lit(nil), s.analyzeTo...)
			if s.onLearn != nil {
				s.onLearn(learnt)
			}
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], -1)
			} else {
				ref := s.attachClause(clause{lits: learnt, learnt: true, lbd: lbd})
				s.Stats.Learnt++
				s.uncheckedEnqueue(learnt[0], ref)
			}
			s.decayVar()
			s.decayClause()
			if s.ConflictBudget > 0 && s.Stats.Conflicts-conflictsAtStart >= s.ConflictBudget {
				s.cancelUntil(0)
				return Unknown
			}
			continue
		}

		if conflictsThisRestart >= conflictLimit {
			// Restart.
			s.Stats.Restarts++
			restartNum++
			conflictLimit = restartBase * luby(restartNum)
			conflictsThisRestart = 0
			s.cancelUntil(0)
			continue
		}
		if float64(s.learntCount) > s.maxLearnt {
			s.reduceDB()
			s.maxLearnt *= 1.1
		}

		// Assumption decisions first.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.litValue(a) {
			case valueTrue:
				// Already satisfied: open an empty decision level so the
				// index bookkeeping stays aligned.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case valueFalse:
				s.cancelUntil(0)
				return Unsat
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.uncheckedEnqueue(a, -1)
			continue
		}

		v := s.pickBranchVar()
		if v < 0 {
			return Sat
		}
		s.Stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(MkLit(v, !s.phase[v]), -1)
	}
}

// Value returns the model value of variable v after Sat.
func (s *Solver) Value(v int) bool { return s.assigns[v] == valueTrue }

// NumClauses returns the number of stored clauses (problem + learnt).
func (s *Solver) NumClauses() int { return len(s.clauses) }
