package cnf

import (
	"math/rand"
	"testing"

	"simgen/internal/network"
	"simgen/internal/sat"
	"simgen/internal/sim"
	"simgen/internal/tt"
)

// randomNetwork builds a random LUT network with up to 4-input LUTs.
func randomNetwork(rng *rand.Rand, npis, nluts int) *network.Network {
	n := network.New("rand")
	var ids []network.NodeID
	for i := 0; i < npis; i++ {
		ids = append(ids, n.AddPI(""))
	}
	for i := 0; i < nluts; i++ {
		k := 1 + rng.Intn(4)
		if k > len(ids) {
			k = len(ids)
		}
		fanins := make([]network.NodeID, k)
		seen := map[network.NodeID]bool{}
		for j := 0; j < k; {
			f := ids[rng.Intn(len(ids))]
			if seen[f] {
				// Allow retry with shrinking pool; duplicate fanins are
				// legal but make truth tables degenerate, so avoid them.
				if len(seen) == len(ids) {
					break
				}
				continue
			}
			seen[f] = true
			fanins[j] = f
			j++
		}
		fn := tt.New(k)
		for m := 0; m < 1<<k; m++ {
			fn.SetBit(m, rng.Intn(2) == 1)
		}
		ids = append(ids, n.AddLUT("", fanins, fn))
	}
	n.AddPO("o", ids[len(ids)-1])
	return n
}

func TestEncodingAgreesWithSimulation(t *testing.T) {
	// Property: asserting node = v is SAT iff some input vector produces v,
	// and any model, when simulated, indeed produces v at the node.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		net := randomNetwork(rng, 3+rng.Intn(3), 5+rng.Intn(10))
		root := net.POs()[0].Driver

		// Exhaustive simulation for ground truth.
		npis := net.NumPIs()
		canBe := map[bool]bool{}
		for m := 0; m < 1<<npis; m++ {
			assign := make([]bool, npis)
			for i := range assign {
				assign[i] = m&(1<<i) != 0
			}
			out := sim.SimulateVector(net, assign)
			canBe[out[root]] = true
		}

		for _, want := range []bool{false, true} {
			s := sat.New()
			e := NewEncoder(net, s)
			if !e.EncodeCone(root) {
				t.Fatal("encode failed")
			}
			s.AddClause(e.Lit(root, !want))
			status := s.Solve()
			if (status == sat.Sat) != canBe[want] {
				t.Fatalf("trial %d want=%v: solver=%v, ground truth=%v", trial, want, status, canBe[want])
			}
			if status == sat.Sat {
				out := sim.SimulateVector(net, e.Model())
				if out[root] != want {
					t.Fatalf("trial %d: model does not produce %v at root", trial, want)
				}
			}
		}
	}
}

func TestAssertDifferEquivalentNodes(t *testing.T) {
	// Two structurally different but equivalent nodes: a&b vs !(!a|!b).
	n := network.New("eq")
	a := n.AddPI("a")
	b := n.AddPI("b")
	and2 := tt.Var(2, 0).And(tt.Var(2, 1))
	g := n.AddLUT("g", []network.NodeID{a, b}, and2)
	na := n.AddLUT("na", []network.NodeID{a}, tt.Var(1, 0).Not())
	nb := n.AddLUT("nb", []network.NodeID{b}, tt.Var(1, 0).Not())
	or2 := tt.Var(2, 0).Or(tt.Var(2, 1))
	o := n.AddLUT("o", []network.NodeID{na, nb}, or2)
	h := n.AddLUT("h", []network.NodeID{o}, tt.Var(1, 0).Not())
	n.AddPO("p1", g)
	n.AddPO("p2", h)

	s := sat.New()
	e := NewEncoder(n, s)
	e.EncodeCone(g)
	e.EncodeCone(h)
	e.AssertDiffer(g, h)
	if got := s.Solve(); got != sat.Unsat {
		t.Fatalf("equivalent nodes: %v, want UNSAT", got)
	}
}

func TestAssertDifferInequivalentNodes(t *testing.T) {
	n := network.New("neq")
	a := n.AddPI("a")
	b := n.AddPI("b")
	and2 := tt.Var(2, 0).And(tt.Var(2, 1))
	or2 := tt.Var(2, 0).Or(tt.Var(2, 1))
	g := n.AddLUT("g", []network.NodeID{a, b}, and2)
	h := n.AddLUT("h", []network.NodeID{a, b}, or2)
	n.AddPO("p1", g)
	n.AddPO("p2", h)

	s := sat.New()
	e := NewEncoder(n, s)
	e.EncodeCone(g)
	e.EncodeCone(h)
	e.AssertDiffer(g, h)
	if got := s.Solve(); got != sat.Sat {
		t.Fatalf("inequivalent nodes: %v, want SAT", got)
	}
	// The counterexample must actually separate the two nodes.
	out := sim.SimulateVector(n, e.Model())
	if out[g] == out[h] {
		t.Fatal("counterexample does not separate the nodes")
	}
}

func TestConstNodeEncoding(t *testing.T) {
	n := network.New("c")
	c1 := n.AddConst(true)
	c0 := n.AddConst(false)
	n.AddPO("k1", c1)
	n.AddPO("k0", c0)
	s := sat.New()
	e := NewEncoder(n, s)
	e.EncodeCone(c1)
	e.EncodeCone(c0)
	if s.Solve() != sat.Sat {
		t.Fatal("constants unsatisfiable")
	}
	if !s.Value(e.Var(c1)) || s.Value(e.Var(c0)) {
		t.Fatal("constant values wrong")
	}
}

func TestXorLit(t *testing.T) {
	n := network.New("x")
	a := n.AddPI("a")
	b := n.AddPI("b")
	n.AddPO("pa", a)
	n.AddPO("pb", b)
	s := sat.New()
	e := NewEncoder(n, s)
	e.EncodeCone(a)
	e.EncodeCone(b)
	x := e.XorLit(e.Lit(a, false), e.Lit(b, false))
	s.AddClause(x)
	if s.Solve() != sat.Sat {
		t.Fatal("xor should be satisfiable")
	}
	if s.Value(e.Var(a)) == s.Value(e.Var(b)) {
		t.Fatal("xor constraint violated")
	}
	// Force equal inputs: now UNSAT.
	s.AddClause(e.Lit(a, false), e.Lit(b, true))
	s.AddClause(e.Lit(a, true), e.Lit(b, false))
	if s.Solve() != sat.Unsat {
		t.Fatal("equal inputs with xor asserted should be UNSAT")
	}
}

func TestIncrementalConeEncoding(t *testing.T) {
	// Encoding one cone then another must not duplicate shared variables.
	n := network.New("shared")
	a := n.AddPI("a")
	b := n.AddPI("b")
	and2 := tt.Var(2, 0).And(tt.Var(2, 1))
	or2 := tt.Var(2, 0).Or(tt.Var(2, 1))
	mid := n.AddLUT("mid", []network.NodeID{a, b}, and2)
	x := n.AddLUT("x", []network.NodeID{mid, a}, or2)
	y := n.AddLUT("y", []network.NodeID{mid, b}, or2)
	n.AddPO("px", x)
	n.AddPO("py", y)
	s := sat.New()
	e := NewEncoder(n, s)
	e.EncodeCone(x)
	varsAfterX := s.NumVars()
	e.EncodeCone(y)
	// y's cone adds only the variable for y itself.
	if s.NumVars() != varsAfterX+1 {
		t.Fatalf("shared cone re-encoded: %d -> %d vars", varsAfterX, s.NumVars())
	}
	if !e.Encoded(mid) || !e.Encoded(y) {
		t.Fatal("Encoded() wrong")
	}
}
