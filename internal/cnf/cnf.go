// Package cnf encodes LUT networks into CNF for the SAT solver (Tseitin
// transformation). Each network node receives one solver variable; a LUT's
// consistency is expressed with one clause per cube of its on-set and
// off-set ISOP covers, which is complete because the two covers partition
// the input space.
package cnf

import (
	"simgen/internal/network"
	"simgen/internal/sat"
)

// Encoder incrementally encodes fanin cones of a network into a solver.
type Encoder struct {
	Solver *sat.Solver
	net    *network.Network
	varOf  map[network.NodeID]int
}

// NewEncoder returns an encoder for net writing into solver.
func NewEncoder(net *network.Network, solver *sat.Solver) *Encoder {
	return &Encoder{
		Solver: solver,
		net:    net,
		varOf:  make(map[network.NodeID]int),
	}
}

// Var returns the solver variable of a node, allocating it on first use.
// The caller must ensure the node's defining clauses are emitted via
// EncodeCone before solving.
func (e *Encoder) Var(id network.NodeID) int {
	if v, ok := e.varOf[id]; ok {
		return v
	}
	v := e.Solver.NewVar()
	e.varOf[id] = v
	return v
}

// Lit returns a solver literal for the node's output.
func (e *Encoder) Lit(id network.NodeID, neg bool) sat.Lit {
	return sat.MkLit(e.Var(id), neg)
}

// Encoded reports whether the node's cone has already been encoded.
func (e *Encoder) Encoded(id network.NodeID) bool {
	_, ok := e.varOf[id]
	return ok
}

// EncodeCone emits Tseitin clauses for every node in root's fanin cone that
// has not been encoded yet. It returns false when the solver became
// trivially unsatisfiable (cannot happen for well-formed networks).
func (e *Encoder) EncodeCone(root network.NodeID) bool {
	for _, id := range e.net.FaninCone(root) {
		if _, done := e.varOf[id]; done {
			continue
		}
		if !e.encodeNode(id) {
			return false
		}
	}
	return true
}

func (e *Encoder) encodeNode(id network.NodeID) bool {
	nd := e.net.Node(id)
	y := e.Var(id)
	switch nd.Kind {
	case network.KindPI:
		return true // free variable
	case network.KindConst:
		return e.Solver.AddClause(sat.MkLit(y, !nd.Func.IsConst1()))
	}
	on, off := e.net.Covers(id)
	// cube -> y  becomes  (!cube | y)
	for _, cube := range on {
		lits := []sat.Lit{sat.MkLit(y, false)}
		for i, f := range nd.Fanins {
			v, cared := cube.Has(i)
			if !cared {
				continue
			}
			lits = append(lits, sat.MkLit(e.Var(f), v))
		}
		if !e.Solver.AddClause(lits...) {
			return false
		}
	}
	// cube -> !y
	for _, cube := range off {
		lits := []sat.Lit{sat.MkLit(y, true)}
		for i, f := range nd.Fanins {
			v, cared := cube.Has(i)
			if !cared {
				continue
			}
			lits = append(lits, sat.MkLit(e.Var(f), v))
		}
		if !e.Solver.AddClause(lits...) {
			return false
		}
	}
	return true
}

// AssertDiffer adds clauses forcing the outputs of nodes a and b to differ:
// (a | b) & (!a | !b). This is the miter constraint used to disprove a
// candidate equivalence; UNSAT means the nodes are equivalent.
func (e *Encoder) AssertDiffer(a, b network.NodeID) bool {
	la, lb := e.Lit(a, false), e.Lit(b, false)
	if !e.Solver.AddClause(la, lb) {
		return false
	}
	return e.Solver.AddClause(la.Not(), lb.Not())
}

// Miter encodes both fanin cones and returns the positive literal of a
// fresh XOR output: assuming it asks the solver whether the nodes can
// differ (UNSAT proves equivalence). The literal is meant to be assumed,
// never asserted, so later calls stay unconstrained.
func (e *Encoder) Miter(a, b network.NodeID) sat.Lit {
	e.EncodeCone(a)
	e.EncodeCone(b)
	return e.XorLit(e.Lit(a, false), e.Lit(b, false))
}

// LearnEqual asserts that two nodes are equal, encoding their cones if
// needed. Used to teach the solver equivalences proven elsewhere so later
// miters over the merged cones become trivial.
func (e *Encoder) LearnEqual(a, b network.NodeID) {
	e.EncodeCone(a)
	e.EncodeCone(b)
	e.Solver.AddClause(e.Lit(a, true), e.Lit(b, false))
	e.Solver.AddClause(e.Lit(a, false), e.Lit(b, true))
}

// XorLit introduces a fresh variable x with x <-> (a XOR b) and returns its
// positive literal; used to build multi-output miters.
func (e *Encoder) XorLit(a, b sat.Lit) sat.Lit {
	x := sat.MkLit(e.Solver.NewVar(), false)
	e.Solver.AddClause(x.Not(), a, b)
	e.Solver.AddClause(x.Not(), a.Not(), b.Not())
	e.Solver.AddClause(x, a.Not(), b)
	e.Solver.AddClause(x, a, b.Not())
	return x
}

// Model extracts the primary-input assignment from a satisfying model,
// indexed by PI position; PIs outside the encoded cones default to false.
func (e *Encoder) Model() []bool {
	assign := make([]bool, e.net.NumPIs())
	for i, pi := range e.net.PIs() {
		if v, ok := e.varOf[pi]; ok {
			assign[i] = e.Solver.Value(v)
		}
	}
	return assign
}
