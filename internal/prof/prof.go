// Package prof wires pprof-based -cpuprofile/-memprofile support into the
// command-line tools, mirroring the flags of `go test`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpuPath is non-empty) and arranges for
// a heap profile to be written to memPath (when non-empty) by the returned
// stop function. stop must run before the process exits — commands that
// terminate via os.Exit need to call it explicitly on every exit path. It
// is idempotent.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live-heap state
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}
