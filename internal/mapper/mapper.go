// Package mapper implements cut-based K-LUT technology mapping of an
// and-inverter graph, the equivalent of ABC's "if -K 6" command that the
// SimGen paper applies to every benchmark before sweeping.
//
// The mapper enumerates priority cuts per node (Mishchenko et al., FPGA'06):
// cuts of the two fanins are merged, pruned to the K best by (depth, area
// flow), and the best cut of each node needed by the cover becomes one LUT.
package mapper

import (
	"fmt"
	"sort"

	"simgen/internal/aig"
	"simgen/internal/network"
	"simgen/internal/tt"
)

// Options configures the mapper.
type Options struct {
	// K is the maximum LUT input count. The paper uses K=6.
	K int
	// CutsPerNode bounds the priority cut set kept per node.
	CutsPerNode int
}

// DefaultOptions mirrors the paper's "if -K 6" configuration.
func DefaultOptions() Options { return Options{K: 6, CutsPerNode: 8} }

// cut is a set of leaf nodes, sorted ascending.
type cut struct {
	leaves []uint32
	depth  int32
	flow   float64
}

func (c *cut) sig() uint64 {
	h := uint64(1469598103934665603)
	for _, l := range c.leaves {
		h ^= uint64(l)
		h *= 1099511628211
	}
	return h
}

// mergeLeaves unions two sorted leaf sets, failing when the union exceeds k.
func mergeLeaves(a, b []uint32, k int) ([]uint32, bool) {
	out := make([]uint32, 0, k)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var next uint32
		switch {
		case i >= len(a):
			next = b[j]
			j++
		case j >= len(b):
			next = a[i]
			i++
		case a[i] < b[j]:
			next = a[i]
			i++
		case a[i] > b[j]:
			next = b[j]
			j++
		default:
			next = a[i]
			i++
			j++
		}
		if len(out) == k {
			return nil, false
		}
		out = append(out, next)
	}
	return out, true
}

// Map covers the graph with K-input LUTs and returns the resulting network.
func Map(g *aig.Graph, opts Options) (*network.Network, error) {
	if opts.K < 2 || opts.K > tt.MaxVars {
		return nil, fmt.Errorf("mapper: K=%d out of range [2,%d]", opts.K, tt.MaxVars)
	}
	if opts.CutsPerNode < 1 {
		opts.CutsPerNode = 8
	}
	n := g.NumNodes()
	refs := g.Refs()

	cuts := make([][]cut, n)     // priority cuts per node (ANDs only)
	arrival := make([]int32, n)  // depth of the best cut
	flowOf := make([]float64, n) // area flow of the best cut

	for node := uint32(1); node < uint32(n); node++ {
		if g.IsPI(node) {
			continue
		}
		f0, f1 := g.Fanins(node)
		c0 := candCuts(cuts, f0.Node())
		c1 := candCuts(cuts, f1.Node())
		seen := map[uint64]bool{}
		var set []cut
		for _, a := range c0 {
			for _, b := range c1 {
				leaves, ok := mergeLeaves(a.leaves, b.leaves, opts.K)
				if !ok {
					continue
				}
				c := cut{leaves: leaves}
				s := c.sig()
				if seen[s] {
					continue
				}
				seen[s] = true
				c.depth = cutDepth(arrival, leaves)
				c.flow = cutFlow(flowOf, refs, node, leaves)
				set = append(set, c)
			}
		}
		sort.Slice(set, func(i, j int) bool {
			if set[i].depth != set[j].depth {
				return set[i].depth < set[j].depth
			}
			if set[i].flow != set[j].flow {
				return set[i].flow < set[j].flow
			}
			return len(set[i].leaves) < len(set[j].leaves)
		})
		if len(set) > opts.CutsPerNode {
			set = set[:opts.CutsPerNode]
		}
		if len(set) == 0 {
			return nil, fmt.Errorf("mapper: node %d has no feasible cut", node)
		}
		cuts[node] = set
		arrival[node] = set[0].depth
		flowOf[node] = set[0].flow
	}

	return buildCover(g, cuts, opts)
}

// candCuts returns the cut set of a fanin node for merging: its priority
// cuts plus the trivial cut {node}. PIs only have the trivial cut.
func candCuts(cuts [][]cut, node uint32) []cut {
	trivial := cut{leaves: []uint32{node}}
	out := make([]cut, 0, len(cuts[node])+1)
	out = append(out, cuts[node]...)
	out = append(out, trivial)
	return out
}

func cutDepth(arrival []int32, leaves []uint32) int32 {
	d := int32(0)
	for _, l := range leaves {
		if arrival[l] > d {
			d = arrival[l]
		}
	}
	return d + 1
}

func cutFlow(flowOf []float64, refs []int32, node uint32, leaves []uint32) float64 {
	f := 1.0
	for _, l := range leaves {
		f += flowOf[l]
	}
	r := refs[node]
	if r < 1 {
		r = 1
	}
	return f / float64(r)
}

// buildCover selects the best cut for every node required by the POs and
// constructs the LUT network.
func buildCover(g *aig.Graph, cuts [][]cut, opts Options) (*network.Network, error) {
	n := g.NumNodes()
	required := make([]bool, n)
	for _, po := range g.POs() {
		nd := po.Lit.Node()
		if g.IsAnd(nd) {
			required[nd] = true
		}
	}
	// Mark leaves of chosen cuts transitively (reverse topological order).
	for node := n - 1; node > 0; node-- {
		if !required[node] || !g.IsAnd(uint32(node)) {
			continue
		}
		for _, leaf := range cuts[node][0].leaves {
			if g.IsAnd(leaf) {
				required[leaf] = true
			}
		}
	}

	net := network.New(g.Name)
	nodeOf := make([]network.NodeID, n)
	for i := range nodeOf {
		nodeOf[i] = network.NoNode
	}
	for i := 0; i < g.NumPIs(); i++ {
		nodeOf[g.PILit(i).Node()] = net.AddPI(g.PIName(i))
	}

	for node := uint32(1); node < uint32(n); node++ {
		if !required[node] || !g.IsAnd(node) {
			continue
		}
		best := cuts[node][0]
		fn := cutFunction(g, node, best.leaves)
		fanins := make([]network.NodeID, len(best.leaves))
		for i, leaf := range best.leaves {
			if nodeOf[leaf] == network.NoNode {
				return nil, fmt.Errorf("mapper: leaf %d of node %d not yet mapped", leaf, node)
			}
			fanins[i] = nodeOf[leaf]
		}
		nodeOf[node] = net.AddLUT("", fanins, fn)
	}

	inverters := map[network.NodeID]network.NodeID{}
	invTable := tt.Var(1, 0).Not()
	for _, po := range g.POs() {
		nd := po.Lit.Node()
		var driver network.NodeID
		switch {
		case nd == 0: // constant
			v := po.Lit.IsNeg()
			driver = net.AddConst(v)
		default:
			driver = nodeOf[nd]
			if driver == network.NoNode {
				return nil, fmt.Errorf("mapper: PO %q driver unmapped", po.Name)
			}
			if po.Lit.IsNeg() {
				inv, ok := inverters[driver]
				if !ok {
					inv = net.AddLUT("", []network.NodeID{driver}, invTable)
					inverters[driver] = inv
				}
				driver = inv
			}
		}
		net.AddPO(po.Name, driver)
	}
	if err := net.Check(); err != nil {
		return nil, fmt.Errorf("mapper: produced invalid network: %v", err)
	}
	return net, nil
}

// cutFunction computes the truth table of node over the given cut leaves.
func cutFunction(g *aig.Graph, node uint32, leaves []uint32) tt.Table {
	k := len(leaves)
	memo := map[uint32]tt.Table{}
	for i, l := range leaves {
		memo[l] = tt.Var(k, i)
	}
	var eval func(n uint32) tt.Table
	evalLit := func(l aig.Lit) tt.Table {
		t := eval(l.Node())
		if l.IsNeg() {
			return t.Not()
		}
		return t
	}
	eval = func(n uint32) tt.Table {
		if t, ok := memo[n]; ok {
			return t
		}
		if n == 0 {
			return tt.Const(k, false)
		}
		if g.IsPI(n) {
			// A PI inside the cone that is not a leaf cannot happen: cuts
			// always stop at PIs.
			panic(fmt.Sprintf("mapper: PI %d inside cut cone", n))
		}
		f0, f1 := g.Fanins(n)
		t := evalLit(f0).And(evalLit(f1))
		memo[n] = t
		return t
	}
	return eval(node)
}
