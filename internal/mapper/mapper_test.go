package mapper

import (
	"math/rand"
	"testing"

	"simgen/internal/aig"
	"simgen/internal/network"
	"simgen/internal/sim"
)

// randomAIG builds a random DAG of npис PIs and nands AND nodes with random
// complemented edges, registering a handful of POs.
func randomAIG(rng *rand.Rand, npis, nands, npos int) *aig.Graph {
	g := aig.New("rand")
	var lits []aig.Lit
	for i := 0; i < npis; i++ {
		lits = append(lits, g.AddPI(""))
	}
	for i := 0; i < nands; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < npos; i++ {
		g.AddPO("", lits[len(lits)-1-rng.Intn(min(len(lits), nands/2+1))].NotIf(rng.Intn(2) == 1))
	}
	return g
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// checkEquivalent verifies that the mapped network computes the same PO
// functions as the AIG on random bit-parallel vectors.
func checkEquivalent(t *testing.T, g *aig.Graph, net *network.Network, rng *rand.Rand) {
	t.Helper()
	if net.NumPIs() != g.NumPIs() || net.NumPOs() != len(g.POs()) {
		t.Fatalf("interface mismatch: net %v vs aig %s", net.Stats(), g.Stats())
	}
	for round := 0; round < 4; round++ {
		aigIn := make([]uint64, g.NumPIs())
		netIn := make([]sim.Words, g.NumPIs())
		for i := range aigIn {
			w := rng.Uint64()
			aigIn[i] = w
			netIn[i] = sim.Words{w}
		}
		aigVals := g.Simulate(aigIn)
		netVals := sim.Simulate(net, netIn, 1)
		for p, po := range g.POs() {
			want := aig.LitValue(aigVals, po.Lit)
			got := netVals[net.POs()[p].Driver][0]
			if want != got {
				t.Fatalf("round %d PO %d: aig=%016x net=%016x", round, p, want, got)
			}
		}
	}
}

func TestMapRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := randomAIG(rng, 4+rng.Intn(8), 20+rng.Intn(200), 1+rng.Intn(5))
		net, err := Map(g, DefaultOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkEquivalent(t, g, net, rng)
	}
}

func TestMapRespectsK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{2, 3, 4, 6} {
		g := randomAIG(rng, 8, 150, 3)
		net, err := Map(g, Options{K: k, CutsPerNode: 8})
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < net.NumNodes(); id++ {
			nd := net.Node(network.NodeID(id))
			if nd.Kind == network.KindLUT && len(nd.Fanins) > k {
				t.Fatalf("K=%d violated: LUT with %d inputs", k, len(nd.Fanins))
			}
		}
		checkEquivalent(t, g, net, rng)
	}
}

func TestMapReducesNodeCount(t *testing.T) {
	// A 16-bit adder has many 2-input ANDs; 6-LUT mapping must use far
	// fewer LUTs than AND nodes.
	g := aig.New("add16")
	a := g.NewWordPIs("a", 16)
	b := g.NewWordPIs("b", 16)
	s, c := g.Add(a, b, aig.False)
	g.AddPOWord("s", s)
	g.AddPO("c", c)
	net, err := Map(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if net.NumLUTs() >= g.NumAnds() {
		t.Fatalf("mapping did not compress: %d LUTs vs %d ANDs", net.NumLUTs(), g.NumAnds())
	}
	rng := rand.New(rand.NewSource(3))
	checkEquivalent(t, g, net, rng)
}

func TestMapReducesDepth(t *testing.T) {
	g := aig.New("chain")
	a := g.AddPI("a")
	b := g.AddPI("b")
	x := g.And(a, b)
	for i := 0; i < 10; i++ {
		x = g.And(x, a.NotIf(i%2 == 0))
	}
	g.AddPO("o", x)
	net, err := Map(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if net.Depth() >= g.Depth() {
		t.Fatalf("LUT depth %d should beat AIG depth %d", net.Depth(), g.Depth())
	}
}

func TestMapComplementedAndConstPOs(t *testing.T) {
	g := aig.New("po")
	a := g.AddPI("a")
	b := g.AddPI("b")
	x := g.And(a, b)
	g.AddPO("pos", x)
	g.AddPO("neg", x.Not())
	g.AddPO("cf", aig.False)
	g.AddPO("ct", aig.True)
	net, err := Map(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := sim.SimulateVector(net, []bool{true, true})
	if !out[net.POs()[0].Driver] || out[net.POs()[1].Driver] {
		t.Fatal("complemented PO wrong")
	}
	if out[net.POs()[2].Driver] || !out[net.POs()[3].Driver] {
		t.Fatal("constant POs wrong")
	}
}

func TestMapDropsDeadLogic(t *testing.T) {
	g := aig.New("dead")
	a := g.AddPI("a")
	b := g.AddPI("b")
	live := g.And(a, b)
	g.And(a.Not(), b) // dead
	g.AddPO("o", live)
	net, err := Map(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if net.NumLUTs() != 1 {
		t.Fatalf("dead logic not dropped: %d LUTs", net.NumLUTs())
	}
}

func TestMapRejectsBadK(t *testing.T) {
	g := aig.New("bad")
	a := g.AddPI("a")
	g.AddPO("o", a)
	if _, err := Map(g, Options{K: 1}); err == nil {
		t.Fatal("K=1 accepted")
	}
	if _, err := Map(g, Options{K: 99}); err == nil {
		t.Fatal("K=99 accepted")
	}
}

func TestMapPIOnlyPO(t *testing.T) {
	g := aig.New("wire")
	a := g.AddPI("a")
	g.AddPO("o", a)
	g.AddPO("no", a.Not())
	net, err := Map(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := sim.SimulateVector(net, []bool{true})
	if !out[net.POs()[0].Driver] || out[net.POs()[1].Driver] {
		t.Fatal("PI wiring wrong")
	}
}

func TestMapMetamorphicBalance(t *testing.T) {
	// Mapping a graph and mapping its balanced form must produce
	// functionally identical networks — a metamorphic check tying the
	// mapper, the balancer, and the simulator together.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		g := randomAIG(rng, 6, 80, 3)
		netA, err := Map(g, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		netB, err := Map(aig.Balance(g), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 4; round++ {
			inA := make([]sim.Words, netA.NumPIs())
			inB := make([]sim.Words, netB.NumPIs())
			for i := range inA {
				w := rng.Uint64()
				inA[i] = sim.Words{w}
				inB[i] = sim.Words{w}
			}
			va := sim.Simulate(netA, inA, 1)
			vb := sim.Simulate(netB, inB, 1)
			for p := range netA.POs() {
				if va[netA.POs()[p].Driver][0] != vb[netB.POs()[p].Driver][0] {
					t.Fatalf("trial %d: balance+map changed PO %d", trial, p)
				}
			}
		}
	}
}
