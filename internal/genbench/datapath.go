package genbench

import (
	"simgen/internal/aig"
)

// The datapath family: redundant word-level implementations (ripple vs
// carry-select adders, array vs radix-4 shift-add multipliers, barrel vs
// decoded shifters, mux-tree vs one-hot ALUs) whose bit-level miters are
// exactly where SAT sweeping collapses and word-level reasoning wins
// (FORWORD, arXiv:2507.02008; Datapath-CEC, arXiv:2501.14740). These
// circuits live in their own registry so the paper-table suites (VTR,
// EPFL, ITC'99) and the experiments that iterate them stay untouched.

var datapathRegistry []Benchmark

func registerDatapath(name string, build func() *aig.Graph) {
	datapathRegistry = append(datapathRegistry, Benchmark{Name: name, Suite: "DATAPATH", Build: build})
}

// Datapath returns the datapath benchmark family in registration order.
func Datapath() []Benchmark {
	return append([]Benchmark(nil), datapathRegistry...)
}

// DatapathByName looks a datapath benchmark up.
func DatapathByName(name string) (Benchmark, bool) {
	for _, b := range datapathRegistry {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// carrySelectAdder is a block carry-select formulation: each block computes
// both carry-in hypotheses with ripple adders and a mux picks the real one.
// Functionally g.Add, structurally very different (no shared carry chain).
func carrySelectAdder(g *aig.Graph, a, b aig.Word, cin aig.Lit, block int) (aig.Word, aig.Lit) {
	if len(a) != len(b) {
		panic("genbench: carrySelectAdder width mismatch")
	}
	out := make(aig.Word, 0, len(a))
	c := cin
	for lo := 0; lo < len(a); lo += block {
		hi := lo + block
		if hi > len(a) {
			hi = len(a)
		}
		s0, c0 := g.Add(a[lo:hi], b[lo:hi], aig.False)
		s1, c1 := g.Add(a[lo:hi], b[lo:hi], aig.True)
		out = append(out, g.MuxWord(c, s1, s0)...)
		c = g.Mux(c, c1, c0)
	}
	return out, c
}

// mulRadix4 is a shift-add multiplier recoded over 2-bit digits of b:
// each step adds one of {0, A, 2A, 3A} (3A precomputed once), halving the
// accumulation depth relative to the array form — the Booth-style recoded
// structure of hardware multipliers.
func mulRadix4(g *aig.Graph, a, b aig.Word) aig.Word {
	width := len(a) + len(b)
	ax := append(append(aig.Word{}, a...), aig.ConstWord(width-len(a), 0)...)
	a2 := aig.ShiftLeftConst(ax, 1)
	a3, _ := g.Add(ax, a2, aig.False)
	zero := aig.ConstWord(width, 0)
	acc := zero
	for i := 0; i < len(b); i += 2 {
		lo := b[i]
		hi := aig.False
		if i+1 < len(b) {
			hi = b[i+1]
		}
		pp := g.MuxWord(hi, g.MuxWord(lo, a3, a2), g.MuxWord(lo, ax, zero))
		acc, _ = g.Add(acc, aig.ShiftLeftConst(pp, i), aig.False)
	}
	return acc
}

// decodedShift is the naive one-hot shifter: decode the shift amount and OR
// together the masked constant shifts. Functionally the barrel shifter for
// amounts below 1<<len(sh).
func decodedShift(g *aig.Graph, a, sh aig.Word, left bool) aig.Word {
	res := aig.ConstWord(len(a), 0)
	for k := 0; k < 1<<uint(len(sh)); k++ {
		isK := g.EqualWord(sh, aig.ConstWord(len(sh), uint64(k)))
		var shifted aig.Word
		if left {
			shifted = aig.ShiftLeftConst(a, k)
		} else {
			shifted = aig.ShiftRightConst(a, k)
		}
		masked := make(aig.Word, len(a))
		for i := range masked {
			masked[i] = g.And(shifted[i], isK)
		}
		res = g.OrWord(res, masked)
	}
	return res
}

// aluOneHot recomputes aluCore's opcode map (000 add, 001 sub, 010 and,
// 011 or, 100 xor, 101 shl, 110 lt, 111 eq) through full opcode decode and
// a one-hot OR merge instead of the mux tree.
func aluOneHot(g *aig.Graph, a, b aig.Word, op []aig.Lit) aig.Word {
	sum, _ := g.Add(a, b, aig.False)
	diff, _ := g.Sub(a, b)
	flagWord := func(f aig.Lit) aig.Word {
		w := aig.ConstWord(len(a), 0)
		w[0] = f
		return w
	}
	results := []aig.Word{
		sum, diff, g.AndWord(a, b), g.OrWord(a, b), g.XorWord(a, b),
		aig.ShiftLeftConst(a, 1), flagWord(g.LessThan(a, b)), flagWord(g.EqualWord(a, b)),
	}
	res := aig.ConstWord(len(a), 0)
	for k, r := range results {
		dec := aig.True
		for j, o := range op {
			dec = g.And(dec, o.NotIf(k&(1<<uint(j)) == 0))
		}
		masked := make(aig.Word, len(a))
		for i := range masked {
			masked[i] = g.And(r[i], dec)
		}
		res = g.OrWord(res, masked)
	}
	return res
}

// rippleLessThan compares MSB-first with an explicit equal-above chain —
// the comparator-tree formulation, vs LessThan's subtract-and-borrow.
func rippleLessThan(g *aig.Graph, a, b aig.Word) aig.Lit {
	lt := aig.False
	eqAbove := aig.True
	for i := len(a) - 1; i >= 0; i-- {
		lt = g.Or(lt, g.And(eqAbove, g.And(a[i].Not(), b[i])))
		eqAbove = g.And(eqAbove, g.Xnor(a[i], b[i]))
	}
	return lt
}

// Twin builders. Each benchmark carries two structurally different
// implementations of the same word function as separate PO words, so
// sweeping (or CEC of the split halves) must prove the cross-implementation
// equivalences.

func buildMul8x8() *aig.Graph {
	g := aig.New("mul8x8")
	a := g.NewWordPIs("a", 8)
	b := g.NewWordPIs("b", 8)
	g.AddPOWord("p", g.Mul(a, b))
	g.AddPOWord("q", mulGP(g, a, b))
	return g
}

func buildMul10x10() *aig.Graph {
	g := aig.New("mul10x10")
	a := g.NewWordPIs("a", 10)
	b := g.NewWordPIs("b", 10)
	g.AddPOWord("p", g.Mul(a, b))
	g.AddPOWord("q", mulGP(g, a, b))
	return g
}

func buildMulBooth8() *aig.Graph {
	g := aig.New("mulbooth8")
	a := g.NewWordPIs("a", 8)
	b := g.NewWordPIs("b", 8)
	g.AddPOWord("p", g.Mul(a, b))
	g.AddPOWord("q", mulRadix4(g, a, b))
	return g
}

func buildAdd16CSel() *aig.Graph {
	g := aig.New("add16csel")
	a := g.NewWordPIs("a", 16)
	b := g.NewWordPIs("b", 16)
	cin := g.AddPI("cin")
	sum, cout := g.Add(a, b, cin)
	g.AddPOWord("s", sum)
	g.AddPO("cout", cout)
	sum2, cout2 := carrySelectAdder(g, a, b, cin, 4)
	g.AddPOWord("t", sum2)
	g.AddPO("cout2", cout2)
	return g
}

func buildShift8() *aig.Graph {
	g := aig.New("bshift8")
	a := g.NewWordPIs("a", 8)
	sh := g.NewWordPIs("sh", 3)
	g.AddPOWord("l", g.ShiftLeft(a, sh))
	g.AddPOWord("m", decodedShift(g, a, sh, true))
	g.AddPOWord("r", g.ShiftRight(a, sh))
	g.AddPOWord("s", decodedShift(g, a, sh, false))
	return g
}

func buildALU8Red() *aig.Graph {
	g := aig.New("alu8red")
	a := g.NewWordPIs("a", 8)
	b := g.NewWordPIs("b", 8)
	op := []aig.Lit{g.AddPI("op0"), g.AddPI("op1"), g.AddPI("op2")}
	g.AddPOWord("r", aluCore(g, a, b, op))
	g.AddPOWord("q", aluOneHot(g, a, b, op))
	return g
}

func buildCmp16() *aig.Graph {
	g := aig.New("cmp16")
	a := g.NewWordPIs("a", 16)
	b := g.NewWordPIs("b", 16)
	g.AddPO("lt", g.LessThan(a, b))
	g.AddPO("lt2", rippleLessThan(g, a, b))
	g.AddPO("eq", g.EqualWord(a, b))
	eq2 := g.ReduceOr(g.XorWord(a, b)).Not()
	g.AddPO("eq2", eq2)
	return g
}

func init() {
	registerDatapath("mul8x8", buildMul8x8)
	registerDatapath("mul10x10", buildMul10x10)
	registerDatapath("mulbooth8", buildMulBooth8)
	registerDatapath("add16csel", buildAdd16CSel)
	registerDatapath("bshift8", buildShift8)
	registerDatapath("alu8red", buildALU8Red)
	registerDatapath("cmp16", buildCmp16)
}
