package genbench

import (
	"math/rand"
	"testing"

	"simgen/internal/aig"
	"simgen/internal/core"
	"simgen/internal/mapper"
	"simgen/internal/network"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 42 {
		t.Fatalf("registry has %d benchmarks, want 42", len(names))
	}
	want := map[string]bool{
		"alu4": true, "apex2": true, "sin": true, "square": true,
		"arbiter": true, "m_ctrl": true, "voter": true, "log2": true,
		"b14_C": true, "b17_C2": true, "b22_C": true,
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for n := range want {
		if !have[n] {
			t.Errorf("missing benchmark %q", n)
		}
	}
	// No duplicates.
	if len(have) != len(names) {
		t.Fatal("duplicate benchmark names")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("apex2"); !ok {
		t.Fatal("apex2 missing")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("found a benchmark that should not exist")
	}
}

func TestAllBenchmarksBuildAndMap(t *testing.T) {
	for _, b := range Registry() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			g := b.Build()
			if g.NumAnds() == 0 {
				t.Fatal("empty circuit")
			}
			net, err := b.LUTNetwork()
			if err != nil {
				t.Fatalf("mapping failed: %v", err)
			}
			if err := net.Check(); err != nil {
				t.Fatalf("invalid network: %v", err)
			}
			if net.NumLUTs() == 0 {
				t.Fatal("no LUTs after mapping")
			}
			// Mapped network must match the AIG on random vectors.
			rng := rand.New(rand.NewSource(1))
			for round := 0; round < 2; round++ {
				vec := g.RandomVector(rng)
				aigOut := g.EvalVector(vec)
				netOut := evalNet(net, vec)
				for p := range aigOut {
					if aigOut[p] != netOut[p] {
						t.Fatalf("PO %d mismatch between AIG and LUT network", p)
					}
				}
			}
		})
	}
}

func evalNet(net *network.Network, vec []bool) []bool {
	out := make([]bool, net.NumPOs())
	vals := simVector(net, vec)
	for i, po := range net.POs() {
		out[i] = vals[po.Driver]
	}
	return out
}

func simVector(net *network.Network, vec []bool) []bool {
	// Local tiny simulator to avoid an import cycle with sim in tests.
	vals := make([]bool, net.NumNodes())
	piIdx := 0
	for id := 0; id < net.NumNodes(); id++ {
		nd := net.Node(network.NodeID(id))
		switch nd.Kind {
		case network.KindPI:
			vals[id] = vec[piIdx]
			piIdx++
		case network.KindConst:
			vals[id] = nd.Func.IsConst1()
		case network.KindLUT:
			m := 0
			for i, f := range nd.Fanins {
				if vals[f] {
					m |= 1 << uint(i)
				}
			}
			vals[id] = nd.Func.Bit(m)
		}
	}
	return vals
}

func TestBuildersDeterministic(t *testing.T) {
	for _, name := range []string{"apex2", "b14_C", "m_ctrl", "des"} {
		b, _ := ByName(name)
		g1 := b.Build()
		g2 := b.Build()
		if g1.NumAnds() != g2.NumAnds() || g1.NumPIs() != g2.NumPIs() || len(g1.POs()) != len(g2.POs()) {
			t.Fatalf("%s: non-deterministic structure", name)
		}
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 5; i++ {
			vec := g1.RandomVector(rng)
			o1 := g1.EvalVector(vec)
			o2 := g2.EvalVector(vec)
			for p := range o1 {
				if o1[p] != o2[p] {
					t.Fatalf("%s: non-deterministic function", name)
				}
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	// The _C and _C2 variants must not be identical circuits.
	b1, _ := ByName("b14_C")
	b2, _ := ByName("b14_C2")
	g1, g2 := b1.Build(), b2.Build()
	if g1.NumPIs() != g2.NumPIs() {
		t.Skip("different interfaces")
	}
	rng := rand.New(rand.NewSource(3))
	same := true
	for i := 0; i < 10 && same; i++ {
		vec := g1.RandomVector(rng)
		o1, o2 := g1.EvalVector(vec), g2.EvalVector(vec)
		for p := range o1 {
			if o1[p] != o2[p] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("b14_C and b14_C2 behave identically")
	}
}

func TestBenchmarksHaveCandidateClasses(t *testing.T) {
	// The experiments need non-trivial equivalence classes after a random
	// round; verify on a sample.
	for _, name := range []string{"alu4", "apex2", "pdc", "b14_C", "m_ctrl"} {
		b, _ := ByName(name)
		net, err := b.LUTNetwork()
		if err != nil {
			t.Fatal(err)
		}
		r := core.NewRunner(net, 1, 42)
		if r.Classes.Cost() == 0 {
			t.Errorf("%s: no candidate classes (cost 0) — useless for the experiments", name)
		}
	}
}

func TestPutOnTopStructure(t *testing.T) {
	b, _ := ByName("apex4") // 9 PIs, more POs than PIs
	g := b.Build()
	in, out := g.NumPIs(), len(g.POs())
	stacked := PutOnTop(g, 3)
	if out >= in {
		// All shortfall-free: PI count unchanged, POs = excess*2 + final.
		if stacked.NumPIs() != in {
			t.Fatalf("PI count %d, want %d", stacked.NumPIs(), in)
		}
		wantPOs := 2*(out-in) + out
		if len(stacked.POs()) != wantPOs {
			t.Fatalf("PO count %d, want %d", len(stacked.POs()), wantPOs)
		}
	}
	if stacked.NumAnds() < 2*g.NumAnds() {
		t.Fatalf("stacking did not grow the circuit: %d vs %d", stacked.NumAnds(), g.NumAnds())
	}
}

func TestPutOnTopShortfallCreatesPIs(t *testing.T) {
	// A circuit with more inputs than outputs needs fresh PIs per copy.
	g := aig.New("narrow")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	g.AddPO("o", g.And(g.And(a, b), c))
	stacked := PutOnTop(g, 3)
	// copy0 uses 3 fresh; copies 1,2 reuse 1 output + 2 fresh each.
	if stacked.NumPIs() != 3+2*2 {
		t.Fatalf("PI count %d, want 7", stacked.NumPIs())
	}
	if len(stacked.POs()) != 1 {
		t.Fatalf("PO count %d, want 1", len(stacked.POs()))
	}
	// Function: and of everything.
	vec := []bool{true, true, true, true, true, true, true}
	if !stacked.EvalVector(vec)[0] {
		t.Fatal("all-ones should yield 1")
	}
	vec[4] = false
	if stacked.EvalVector(vec)[0] {
		t.Fatal("a zero input should propagate")
	}
}

func TestPutOnTopFunctional(t *testing.T) {
	// For a single-output single... use a 2-in 2-out circuit where
	// stacking is easy to model: (x,y) -> (x XOR y, x AND y).
	g := aig.New("fn")
	x := g.AddPI("x")
	y := g.AddPI("y")
	g.AddPO("s", g.Xor(x, y))
	g.AddPO("c", g.And(x, y))
	stacked := PutOnTop(g, 2)
	if stacked.NumPIs() != 2 || len(stacked.POs()) != 2 {
		t.Fatalf("interface wrong: %s", stacked.Stats())
	}
	for m := 0; m < 4; m++ {
		xv, yv := m&1 != 0, m&2 != 0
		s1, c1 := xv != yv, xv && yv
		want := []bool{s1 != c1, s1 && c1}
		got := stacked.EvalVector([]bool{xv, yv})
		if got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("m=%d: got %v want %v", m, got, want)
		}
	}
}

func TestPutOnTopSingleCopyIdentity(t *testing.T) {
	b, _ := ByName("ex5p")
	g := b.Build()
	one := PutOnTop(g, 1)
	if one.NumPIs() != g.NumPIs() || len(one.POs()) != len(g.POs()) {
		t.Fatal("single copy changed the interface")
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5; i++ {
		vec := g.RandomVector(rng)
		o1, o2 := g.EvalVector(vec), one.EvalVector(vec)
		for p := range o1 {
			if o1[p] != o2[p] {
				t.Fatal("single copy changed the function")
			}
		}
	}
}

func TestPutOnTopPreservesCandidateClasses(t *testing.T) {
	// The scalability experiment depends on stacked circuits still having
	// candidate classes after mapping and a random round.
	b, _ := ByName("alu4")
	stacked := PutOnTop(b.Build(), 5)
	net, err := mapper.Map(stacked, mapper.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := core.NewRunner(net, 1, 42)
	if r.Classes.Cost() == 0 {
		t.Fatal("stacked alu4 has no candidate classes")
	}
}
