package genbench

import (
	"fmt"

	"simgen/internal/aig"
	"simgen/internal/mapper"
	"simgen/internal/network"
)

// twinSpecs builds one implementation of each datapath benchmark into a
// fresh graph: second=false is the reference implementation, second=true
// the structurally different re-implementation. Both sides emit identical
// PI and PO names, so the mapped halves are index-aligned CEC inputs.
//
// Unlike the combined twin benchmarks (which hold both implementations in
// one graph, where the AIG's structural hashing shares common subterms),
// each side here is built and technology-mapped on its own — the halves
// share no structure beyond what the two algorithms genuinely have in
// common, exactly like two independent synthesis results. That
// independence is what makes the multiplier pairs hard for bit-level
// sweeping and is the contrast the word-stage benchmarks measure.
var twinSpecs = map[string]func(g *aig.Graph, second bool){
	"mul8x8":    func(g *aig.Graph, second bool) { mulTwin(g, 8, second, mulGP) },
	"mul10x10":  func(g *aig.Graph, second bool) { mulTwin(g, 10, second, mulGP) },
	"mulbooth8": func(g *aig.Graph, second bool) { mulTwin(g, 8, second, mulRadix4) },
	"add16csel": func(g *aig.Graph, second bool) {
		a := g.NewWordPIs("a", 16)
		b := g.NewWordPIs("b", 16)
		cin := g.AddPI("cin")
		var sum aig.Word
		var cout aig.Lit
		if second {
			sum, cout = carrySelectAdder(g, a, b, cin, 4)
		} else {
			sum, cout = g.Add(a, b, cin)
		}
		g.AddPOWord("s", sum)
		g.AddPO("cout", cout)
	},
	"bshift8": func(g *aig.Graph, second bool) {
		a := g.NewWordPIs("a", 8)
		sh := g.NewWordPIs("sh", 3)
		if second {
			g.AddPOWord("l", decodedShift(g, a, sh, true))
			g.AddPOWord("r", decodedShift(g, a, sh, false))
		} else {
			g.AddPOWord("l", g.ShiftLeft(a, sh))
			g.AddPOWord("r", g.ShiftRight(a, sh))
		}
	},
	"alu8red": func(g *aig.Graph, second bool) {
		a := g.NewWordPIs("a", 8)
		b := g.NewWordPIs("b", 8)
		op := []aig.Lit{g.AddPI("op0"), g.AddPI("op1"), g.AddPI("op2")}
		if second {
			g.AddPOWord("r", aluOneHot(g, a, b, op))
		} else {
			g.AddPOWord("r", aluCore(g, a, b, op))
		}
	},
	"cmp16": func(g *aig.Graph, second bool) {
		a := g.NewWordPIs("a", 16)
		b := g.NewWordPIs("b", 16)
		if second {
			g.AddPO("lt", rippleLessThan(g, a, b))
			g.AddPO("eq", g.ReduceOr(g.XorWord(a, b)).Not())
		} else {
			g.AddPO("lt", g.LessThan(a, b))
			g.AddPO("eq", g.EqualWord(a, b))
		}
	},
}

func mulTwin(g *aig.Graph, w int, second bool, impl2 func(*aig.Graph, aig.Word, aig.Word) aig.Word) {
	a := g.NewWordPIs("a", w)
	b := g.NewWordPIs("b", w)
	if second {
		g.AddPOWord("p", impl2(g, a, b))
	} else {
		g.AddPOWord("p", g.Mul(a, b))
	}
}

// SplitTwin materializes a datapath benchmark as a CEC-ready circuit pair:
// each implementation is built into its own graph and technology-mapped
// independently. The halves are exactly what the golden datapath corpus
// stores and what `sweep -cec` proves equivalent.
func SplitTwin(name string) (a, b *network.Network, err error) {
	return SplitTwinK(name, 0)
}

// SplitTwinK is SplitTwin with an explicit LUT input bound for the
// technology mapping; k <= 0 uses the default (K=6).
func SplitTwinK(name string, k int) (a, b *network.Network, err error) {
	spec, ok := twinSpecs[name]
	if !ok {
		return nil, nil, fmt.Errorf("genbench: %q is not a datapath twin benchmark", name)
	}
	mopts := mapper.DefaultOptions()
	if k > 0 {
		mopts.K = k
	}
	build := func(second bool, suffix string) (*network.Network, error) {
		g := aig.New(name + suffix)
		spec(g, second)
		return mapper.Map(g, mopts)
	}
	if a, err = build(false, "_a"); err != nil {
		return nil, nil, err
	}
	if b, err = build(true, "_b"); err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// TwinNames returns the datapath benchmarks SplitTwin supports, in
// registration order.
func TwinNames() []string {
	var names []string
	for _, bm := range datapathRegistry {
		if _, ok := twinSpecs[bm.Name]; ok {
			names = append(names, bm.Name)
		}
	}
	return names
}
