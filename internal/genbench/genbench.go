// Package genbench provides the benchmark suite for the experiments: 42
// deterministic synthetic circuits named after the VTR, EPFL and ITC'99
// benchmarks the SimGen paper evaluates on, plus the "&putontop" network
// stacking operation used in the paper's scalability study.
//
// The original benchmark files are not redistributable here, so each
// circuit is generated to match its namesake in *kind* (two-level PLA-like
// control, word-level arithmetic, decoders/arbiters, unrolled sequential
// control) and in approximate size class. What matters for reproducing the
// paper's comparisons is that the circuits expose realistic candidate
// equivalence classes: near-constant deep nodes that random simulation
// cannot split, genuine duplicated cones that SAT proves equivalent, and
// reconvergent sharing that makes reverse simulation conflict-prone. The
// generators create all three by construction.
package genbench

import (
	"fmt"
	"math/rand"
	"sort"

	"simgen/internal/aig"
	"simgen/internal/mapper"
	"simgen/internal/network"
)

// Benchmark is one named circuit generator.
type Benchmark struct {
	Name  string
	Suite string // "VTR", "EPFL" or "ITC99"
	Build func() *aig.Graph
}

// LUTNetwork generates the circuit and maps it into 6-input LUTs, the same
// preprocessing ("if -K 6") the paper applies.
func (b Benchmark) LUTNetwork() (*network.Network, error) {
	return mapper.Map(b.Build(), mapper.DefaultOptions())
}

var registry []Benchmark

func register(name, suite string, build func() *aig.Graph) {
	registry = append(registry, Benchmark{Name: name, Suite: suite, Build: build})
}

// Registry returns all benchmarks in a stable order.
func Registry() []Benchmark {
	out := append([]Benchmark(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName looks a benchmark up.
func ByName(name string) (Benchmark, bool) {
	for _, b := range registry {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names returns the sorted benchmark names.
func Names() []string {
	bs := Registry()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}

// seedOf derives a deterministic seed from a benchmark name.
func seedOf(name string) int64 {
	h := int64(1469598103934665603)
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}

// PutOnTop stacks copies of the circuit: the outputs of each copy drive the
// inputs of the one above it, mirroring ABC's "&putontop". When a copy has
// more outputs than the next needs, the excess become primary outputs; when
// it has fewer, fresh primary inputs fill the gap.
func PutOnTop(src *aig.Graph, copies int) *aig.Graph {
	if copies < 1 {
		panic("genbench: PutOnTop needs at least one copy")
	}
	in, out := src.NumPIs(), len(src.POs())
	dst := aig.New(fmt.Sprintf("%s_x%d", src.Name, copies))

	// All PIs must exist before any AND node: create the base copy's
	// inputs plus the per-copy shortfall up front.
	base := make([]aig.Lit, in)
	for i := range base {
		base[i] = dst.AddPI(fmt.Sprintf("pi0_%d", i))
	}
	shortfall := 0
	if in > out {
		shortfall = in - out
	}
	extras := make([][]aig.Lit, copies-1)
	for k := range extras {
		extras[k] = make([]aig.Lit, shortfall)
		for i := range extras[k] {
			extras[k][i] = dst.AddPI(fmt.Sprintf("pi%d_%d", k+1, i))
		}
	}

	cur := base
	for k := 0; k < copies; k++ {
		outs := instantiate(dst, src, cur)
		if k == copies-1 {
			for i, l := range outs {
				dst.AddPO(fmt.Sprintf("po%d_%d", k, i), l)
			}
			break
		}
		if out >= in {
			cur = outs[:in]
			for i, l := range outs[in:] {
				dst.AddPO(fmt.Sprintf("po%d_%d", k, in+i), l)
			}
		} else {
			cur = append(append([]aig.Lit(nil), outs...), extras[k]...)
		}
	}
	return dst
}

// instantiate copies src into dst with the given literals standing in for
// src's primary inputs; it returns the literals of src's primary outputs.
func instantiate(dst, src *aig.Graph, inputs []aig.Lit) []aig.Lit {
	mapping := make([]aig.Lit, src.NumNodes())
	mapping[0] = aig.False
	for i := 0; i < src.NumPIs(); i++ {
		mapping[src.PILit(i).Node()] = inputs[i]
	}
	mapLit := func(l aig.Lit) aig.Lit {
		return mapping[l.Node()].NotIf(l.IsNeg())
	}
	for n := uint32(src.NumPIs() + 1); n < uint32(src.NumNodes()); n++ {
		f0, f1 := src.Fanins(n)
		mapping[n] = dst.And(mapLit(f0), mapLit(f1))
	}
	outs := make([]aig.Lit, len(src.POs()))
	for i, po := range src.POs() {
		outs[i] = mapLit(po.Lit)
	}
	return outs
}

// orBalanced builds a balanced OR tree — a structurally different (and thus
// not strash-merged) implementation of OrN's linear fold, used to inject
// genuine equivalences for sweeping to prove.
func orBalanced(g *aig.Graph, ls []aig.Lit) aig.Lit {
	switch len(ls) {
	case 0:
		return aig.False
	case 1:
		return ls[0]
	}
	mid := len(ls) / 2
	return g.Or(orBalanced(g, ls[:mid]), orBalanced(g, ls[mid:]))
}

// andBalanced is the AND counterpart of orBalanced.
func andBalanced(g *aig.Graph, ls []aig.Lit) aig.Lit {
	switch len(ls) {
	case 0:
		return aig.True
	case 1:
		return ls[0]
	}
	mid := len(ls) / 2
	return g.And(andBalanced(g, ls[:mid]), andBalanced(g, ls[mid:]))
}

// randomCube draws a product term over the inputs with nlits literals.
func randomCube(g *aig.Graph, rng *rand.Rand, inputs []aig.Lit, nlits int) aig.Lit {
	perm := rng.Perm(len(inputs))[:nlits]
	term := aig.True
	for _, i := range perm {
		term = g.And(term, inputs[i].NotIf(rng.Intn(2) == 1))
	}
	return term
}
