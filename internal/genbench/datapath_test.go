package genbench

import (
	"math/rand"
	"testing"
)

func TestDatapathRegistry(t *testing.T) {
	fam := Datapath()
	if len(fam) < 6 {
		t.Fatalf("datapath family has %d benchmarks, want at least 6", len(fam))
	}
	seen := map[string]bool{}
	for _, b := range fam {
		if b.Suite != "DATAPATH" {
			t.Errorf("%s: suite %q, want DATAPATH", b.Name, b.Suite)
		}
		if seen[b.Name] {
			t.Errorf("duplicate datapath benchmark %q", b.Name)
		}
		seen[b.Name] = true
		// The family must stay out of the paper-table registry.
		if _, ok := ByName(b.Name); ok {
			t.Errorf("%s leaked into the main registry", b.Name)
		}
	}
	if _, ok := DatapathByName("mul8x8"); !ok {
		t.Fatal("mul8x8 missing from the datapath family")
	}
}

func TestDatapathBenchmarksBuildAndMap(t *testing.T) {
	for _, b := range Datapath() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			g := b.Build()
			if g.NumAnds() == 0 {
				t.Fatal("empty circuit")
			}
			net, err := b.LUTNetwork()
			if err != nil {
				t.Fatalf("mapping failed: %v", err)
			}
			if err := net.Check(); err != nil {
				t.Fatalf("invalid network: %v", err)
			}
			rng := rand.New(rand.NewSource(1))
			for round := 0; round < 2; round++ {
				vec := g.RandomVector(rng)
				aigOut := g.EvalVector(vec)
				netOut := evalNet(net, vec)
				for p := range aigOut {
					if aigOut[p] != netOut[p] {
						t.Fatalf("PO %d mismatch between AIG and LUT network", p)
					}
				}
			}
		})
	}
}

// TestSplitTwinHalves checks the CEC-pair contract of every split: the
// halves expose identical interfaces (PI and PO names in identical order)
// and agree on random vectors — the corpus replay test proves the full
// equivalence with CEC.
func TestSplitTwinHalves(t *testing.T) {
	names := TwinNames()
	if len(names) < 6 {
		t.Fatalf("%d twin benchmarks, want at least 6", len(names))
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			a, b, err := SplitTwin(name)
			if err != nil {
				t.Fatalf("split failed: %v", err)
			}
			for _, half := range []interface{ Check() error }{a, b} {
				if err := half.Check(); err != nil {
					t.Fatalf("invalid half: %v", err)
				}
			}
			if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
				t.Fatalf("interface mismatch: %d/%d PIs, %d/%d POs",
					a.NumPIs(), b.NumPIs(), a.NumPOs(), b.NumPOs())
			}
			for i, pi := range a.PIs() {
				if a.Node(pi).Name != b.Node(b.PIs()[i]).Name {
					t.Fatalf("PI %d name mismatch: %q vs %q",
						i, a.Node(pi).Name, b.Node(b.PIs()[i]).Name)
				}
			}
			for i, po := range a.POs() {
				if po.Name != b.POs()[i].Name {
					t.Fatalf("PO %d name mismatch: %q vs %q", i, po.Name, b.POs()[i].Name)
				}
			}
			rng := rand.New(rand.NewSource(7))
			for round := 0; round < 16; round++ {
				vec := make([]bool, a.NumPIs())
				for i := range vec {
					vec[i] = rng.Intn(2) == 1
				}
				oa, ob := evalNet(a, vec), evalNet(b, vec)
				for p := range oa {
					if oa[p] != ob[p] {
						t.Fatalf("round %d: halves disagree on PO %q",
							round, a.POs()[p].Name)
					}
				}
			}
		})
	}
}

func TestSplitTwinUnknown(t *testing.T) {
	if _, _, err := SplitTwin("apex2"); err == nil {
		t.Fatal("splitting a non-twin benchmark must fail")
	}
}
