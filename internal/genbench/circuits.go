package genbench

import (
	"fmt"
	"math/rand"

	"simgen/internal/aig"
)

// sopBench builds a two-level (PLA-like) circuit in the spirit of the MCNC
// control benchmarks: npos outputs, each an OR of product terms drawn from
// a shared pool. Sharing the pool creates reconvergence; `dup` outputs are
// additionally re-implemented as balanced OR trees over the same terms,
// planting genuine node equivalences that only SAT can prove.
func sopBench(name string, npis, npos, pool, cubesPerPO, maxLits, dup int) func() *aig.Graph {
	return func() *aig.Graph {
		rng := rand.New(rand.NewSource(seedOf(name)))
		g := aig.New(name)
		inputs := make([]aig.Lit, npis)
		for i := range inputs {
			inputs[i] = g.AddPI(fmt.Sprintf("i%d", i))
		}
		terms := make([]aig.Lit, pool)
		for i := range terms {
			nlits := 2 + rng.Intn(maxLits-1)
			// A quarter of the pool are deep cubes (8-14 literals): they
			// almost never activate under random vectors, so their LUTs
			// survive random simulation as candidate classes — the workload
			// that makes guided pattern generation worthwhile.
			if rng.Intn(4) == 0 {
				nlits = 8 + rng.Intn(7)
			}
			if nlits > npis {
				nlits = npis
			}
			terms[i] = randomCube(g, rng, inputs, nlits)
		}
		for o := 0; o < npos; o++ {
			n := cubesPerPO/2 + rng.Intn(cubesPerPO)
			chosen := make([]aig.Lit, 0, n)
			for _, t := range rng.Perm(pool)[:min(n, pool)] {
				chosen = append(chosen, terms[t])
			}
			out := g.OrN(chosen)
			g.AddPO(fmt.Sprintf("o%d", o), out)
			if o < dup {
				g.AddPO(fmt.Sprintf("o%d_dup", o), orBalanced(g, chosen))
			}
		}
		return g
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// aluCore builds a small ALU over two operand words and an opcode: add,
// subtract, AND, OR, XOR, shift-left, compare. Used by alu4 and the ITC'99
// style circuits.
func aluCore(g *aig.Graph, a, b aig.Word, op []aig.Lit) aig.Word {
	sum, _ := g.Add(a, b, aig.False)
	diff, _ := g.Sub(a, b)
	andW := g.AndWord(a, b)
	orW := g.OrWord(a, b)
	xorW := g.XorWord(a, b)
	shl := aig.ShiftLeftConst(a, 1)
	lt := g.LessThan(a, b)
	ltW := make(aig.Word, len(a))
	for i := range ltW {
		if i == 0 {
			ltW[i] = lt
		} else {
			ltW[i] = aig.False
		}
	}
	eqW := make(aig.Word, len(a))
	eq := g.EqualWord(a, b)
	for i := range eqW {
		if i == 0 {
			eqW[i] = eq
		} else {
			eqW[i] = aig.False
		}
	}

	r01 := g.MuxWord(op[0], diff, sum)
	r23 := g.MuxWord(op[0], orW, andW)
	r45 := g.MuxWord(op[0], shl, xorW)
	r67 := g.MuxWord(op[0], eqW, ltW)
	r0123 := g.MuxWord(op[1], r23, r01)
	r4567 := g.MuxWord(op[1], r67, r45)
	return g.MuxWord(op[2], r4567, r0123)
}

func buildALU4() *aig.Graph {
	g := aig.New("alu4")
	a := g.NewWordPIs("a", 8)
	b := g.NewWordPIs("b", 8)
	op := []aig.Lit{g.AddPI("op0"), g.AddPI("op1"), g.AddPI("op2")}
	r := aluCore(g, a, b, op)
	g.AddPOWord("r", r)
	// Duplicate the adder through a structurally different carry chain
	// (generate/propagate form) so sweeping finds provable equivalences.
	sum2 := gpAdder(g, a, b, aig.False)
	g.AddPOWord("s", sum2)
	// Near-constant compares: survive random simulation into sweeping.
	g.AddPO("eq", g.EqualWord(a, b))
	g.AddPO("magic", g.EqualWord(r, aig.ConstWord(8, 0x5A)))
	return g
}

// gpAdder is a generate/propagate formulation of addition with carry-in —
// functionally the ripple adder, structurally distinct.
func gpAdder(g *aig.Graph, a, b aig.Word, cin aig.Lit) aig.Word {
	w := len(a)
	gen := make([]aig.Lit, w)
	prop := make([]aig.Lit, w)
	for i := 0; i < w; i++ {
		gen[i] = g.And(a[i], b[i])
		prop[i] = g.Xor(a[i], b[i])
	}
	sum := make(aig.Word, w)
	carry := cin
	for i := 0; i < w; i++ {
		sum[i] = g.Xor(prop[i], carry)
		carry = g.Or(gen[i], g.And(prop[i], carry))
	}
	return sum
}

func buildSquare() *aig.Graph {
	g := aig.New("square")
	x := g.NewWordPIs("x", 10)
	sq := g.Mul(x, x)
	g.AddPOWord("sq", sq)
	// Second multiplier with a generate/propagate accumulation chain:
	// equivalent product bits, different structure.
	g.AddPOWord("sq2", mulGP(g, x, x))
	g.AddPO("isq", g.EqualWord(sq[:16], aig.ConstWord(16, 0x2B91)))
	return g
}

// mulGP is an array multiplier whose partial-product accumulation uses the
// generate/propagate adder instead of the ripple chain.
func mulGP(g *aig.Graph, a, b aig.Word) aig.Word {
	width := len(a) + len(b)
	acc := aig.ConstWord(width, 0)
	for i, bi := range b {
		partial := aig.ConstWord(width, 0)
		for j, aj := range a {
			if i+j < width {
				partial[i+j] = g.And(aj, bi)
			}
		}
		acc = gpAdder(g, acc, partial, aig.False)
	}
	return acc
}

func buildSin() *aig.Graph {
	// Fixed-point odd-polynomial approximation of sine: multiplier-heavy,
	// matching the EPFL "sin" character.
	g := aig.New("sin")
	x := g.NewWordPIs("x", 8)
	x2 := g.Mul(x, x)[:10]
	x3 := g.Mul(x2, x)[:12]
	// sin(x) ~ x - x^3/6: divide by 8 + by 32 approximation (1/6 ~ 5/32).
	t1 := aig.ShiftRightConst(x3, 3)
	t2 := aig.ShiftRightConst(x3, 5)
	term, _ := g.Add(t1[:10], t2[:10], aig.False)
	xw := append(append(aig.Word{}, x...), aig.ConstWord(2, 0)...)
	res, _ := g.Sub(xw, term)
	g.AddPOWord("sin", res)
	// Equivalent subtraction through the generate/propagate chain.
	g.AddPOWord("sin2", gpAdder(g, xw, g.NotWord(term), aig.True))
	g.AddPO("zero", g.EqualWord(res, aig.ConstWord(10, 0)))
	return g
}

func buildLog2() *aig.Graph {
	// Integer log2 of a 16-bit input: priority encoder for the exponent
	// plus a barrel shifter normalizing the mantissa.
	g := aig.New("log2")
	x := g.NewWordPIs("x", 16)
	w := len(x)
	// Exponent: index of the most significant set bit.
	exp := aig.ConstWord(4, 0)
	found := aig.False
	for i := w - 1; i >= 0; i-- {
		isFirst := g.And(x[i], found.Not())
		exp = g.MuxWord(isFirst, aig.ConstWord(4, uint64(i)), exp)
		found = g.Or(found, x[i])
	}
	// Mantissa: input shifted left so the MSB is aligned.
	shAmt := make(aig.Word, 4)
	for i := range shAmt {
		shAmt[i] = exp[i].Not() // 15 - exp
	}
	mant := g.ShiftLeft(x, shAmt)
	g.AddPOWord("exp", exp)
	g.AddPO("valid", found)
	g.AddPOWord("mant", mant[8:])
	// Duplicate exponent via a balanced reduction for equivalences.
	exp2 := aig.ConstWord(4, 0)
	found2 := aig.False
	for i := w - 1; i >= 0; i-- {
		hit := g.And(x[i], found2.Not())
		for b2 := 0; b2 < 4; b2++ {
			if uint64(i)&(1<<uint(b2)) != 0 {
				exp2[b2] = g.Or(exp2[b2], hit)
			}
		}
		found2 = g.Or(x[i], found2)
	}
	g.AddPOWord("exp2", exp2)
	return g
}

func buildCordic() *aig.Graph {
	// CORDIC-style iterative rotation on 10-bit words: each iteration
	// conditionally adds or subtracts a shifted copy.
	g := aig.New("cordic")
	x := g.NewWordPIs("x", 10)
	y := g.NewWordPIs("y", 10)
	z := g.NewWordPIs("z", 6)
	for i := 0; i < 6; i++ {
		dir := z[i]
		xs := aig.ShiftRightConst(x, i)
		ys := aig.ShiftRightConst(y, i)
		xPlus, _ := g.Add(x, ys, aig.False)
		xMinus, _ := g.Sub(x, ys)
		yPlus, _ := g.Add(y, xs, aig.False)
		yMinus, _ := g.Sub(y, xs)
		x = g.MuxWord(dir, xMinus, xPlus)
		y = g.MuxWord(dir, yPlus, yMinus)
	}
	g.AddPOWord("xo", x)
	g.AddPOWord("yo", y)
	return g
}

func buildVoter() *aig.Graph {
	// Majority of 15 inputs, implemented twice: a popcount adder tree with
	// comparison, and a recursive median network. The two roots are
	// provably equivalent.
	g := aig.New("voter")
	in := make([]aig.Lit, 31)
	for i := range in {
		in[i] = g.AddPI(fmt.Sprintf("v%d", i))
	}
	// Popcount via adder tree.
	words := make([]aig.Word, len(in))
	for i, l := range in {
		words[i] = aig.Word{l, aig.False, aig.False, aig.False, aig.False}
	}
	for len(words) > 1 {
		var next []aig.Word
		for i := 0; i+1 < len(words); i += 2 {
			s, _ := g.Add(words[i], words[i+1], aig.False)
			next = append(next, s)
		}
		if len(words)%2 == 1 {
			next = append(next, words[len(words)-1])
		}
		words = next
	}
	maj1 := g.LessThan(aig.ConstWord(5, 15), words[0])
	// Equivalent threshold with the comparison formulated the other way,
	// plus a popcount duplicate accumulated via generate/propagate adders.
	maj1b := g.LessThan(words[0], aig.ConstWord(5, 16)).Not()
	g.AddPO("maj_alt", maj1b)
	g.AddPO("all", g.EqualWord(words[0], aig.ConstWord(5, 31)))
	count2 := aig.ConstWord(5, 0)
	for _, l := range in {
		bit := aig.Word{l, aig.False, aig.False, aig.False, aig.False}
		count2 = gpAdder(g, count2, bit, aig.False)
	}
	g.AddPOWord("cnt", words[0])
	g.AddPOWord("cnt2", count2)
	// Median network: majority of three majorities of five.
	maj5 := func(ls []aig.Lit) aig.Lit {
		// Majority of 5 = OR over all 3-subsets' ANDs.
		var terms []aig.Lit
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				for k := j + 1; k < 5; k++ {
					terms = append(terms, g.And(g.And(ls[i], ls[j]), ls[k]))
				}
			}
		}
		return orBalanced(g, terms)
	}
	m1 := maj5(in[0:5])
	m2 := maj5(in[5:10])
	m3 := maj5(in[10:15])
	_ = in[15:]
	maj2 := g.Maj(m1, m2, m3)
	g.AddPO("maj", maj1)
	g.AddPO("maj_net", maj2) // approximation of majority: kept as workload
	return g
}

func buildDec() *aig.Graph {
	// 7-to-128 decoder: every output is a distinct full minterm.
	g := aig.New("dec")
	sel := make([]aig.Lit, 7)
	for i := range sel {
		sel[i] = g.AddPI(fmt.Sprintf("s%d", i))
	}
	for v := 0; v < 128; v++ {
		term := aig.True
		for b := 0; b < 7; b++ {
			term = g.And(term, sel[b].NotIf(v&(1<<uint(b)) == 0))
		}
		g.AddPO(fmt.Sprintf("d%d", v), term)
	}
	return g
}

func buildArbiter() *aig.Graph {
	// Priority arbiter over 32 requests: grant[i] = req[i] & none before.
	// The "none before" chain is built twice (linear and balanced).
	g := aig.New("arbiter")
	req := make([]aig.Lit, 32)
	for i := range req {
		req[i] = g.AddPI(fmt.Sprintf("r%d", i))
	}
	noneBefore := aig.True
	for i := 0; i < 32; i++ {
		g.AddPO(fmt.Sprintf("g%d", i), g.And(req[i], noneBefore))
		noneBefore = g.And(noneBefore, req[i].Not())
	}
	// Balanced duplicates of selected prefix terms.
	for _, i := range []int{7, 15, 23, 31} {
		inv := make([]aig.Lit, i+1)
		for j := 0; j <= i; j++ {
			inv[j] = req[j].Not()
		}
		g.AddPO(fmt.Sprintf("free%d", i), andBalanced(g, inv))
	}
	return g
}

func buildPriority() *aig.Graph {
	// 64-to-6 priority encoder plus a valid flag.
	g := aig.New("priority")
	in := make([]aig.Lit, 64)
	for i := range in {
		in[i] = g.AddPI(fmt.Sprintf("p%d", i))
	}
	idx := aig.ConstWord(6, 0)
	found := aig.False
	for i := 63; i >= 0; i-- {
		hit := g.And(in[i], found.Not())
		idx = g.MuxWord(hit, aig.ConstWord(6, uint64(i)), idx)
		found = g.Or(found, in[i])
	}
	g.AddPOWord("idx", idx)
	g.AddPO("valid", found)
	// Second valid implementation: balanced OR.
	g.AddPO("valid2", orBalanced(g, in))
	return g
}

func buildMemCtrl() *aig.Graph {
	// Memory-controller-like control logic: bank decoding, address range
	// compares, request arbitration and a refresh countdown — the largest
	// control benchmark, mirroring mem_ctrl's role in the paper.
	g := aig.New("m_ctrl")
	rng := rand.New(rand.NewSource(seedOf("m_ctrl")))
	addr := g.NewWordPIs("addr", 24)
	cmd := g.NewWordPIs("cmd", 6)
	req := make([]aig.Lit, 16)
	for i := range req {
		req[i] = g.AddPI(fmt.Sprintf("req%d", i))
	}
	count := g.NewWordPIs("cnt", 12)

	// Bank select: decode addr[20:24].
	bankSel := make([]aig.Lit, 16)
	for b := 0; b < 16; b++ {
		term := aig.True
		for i := 0; i < 4; i++ {
			term = g.And(term, addr[20+i].NotIf(b&(1<<uint(i)) == 0))
		}
		bankSel[b] = term
	}
	// Range compares against pseudo-random bounds: exact-match and window
	// compares are near-constant under random vectors, which is what makes
	// mem_ctrl the hardest sweeping workload in the paper.
	var hits []aig.Lit
	for r := 0; r < 16; r++ {
		lo := aig.ConstWord(24, uint64(rng.Intn(1<<24)))
		hi := aig.ConstWord(24, uint64(rng.Intn(1<<24)))
		inRange := g.And(g.LessThan(lo, addr), g.LessThan(addr, hi))
		hits = append(hits, inRange)
		g.AddPO(fmt.Sprintf("hit%d", r), inRange)
		// Exact tag match per region.
		tag := aig.ConstWord(24, uint64(rng.Intn(1<<24)))
		g.AddPO(fmt.Sprintf("tag%d", r), g.EqualWord(addr, tag))
	}
	// Arbitration per bank, twice (linear chain and per-bank recompute).
	grantPrev := aig.True
	var grants []aig.Lit
	for b := 0; b < 16; b++ {
		sel := g.And(req[b], bankSel[b])
		grant := g.And(sel, grantPrev)
		grantPrev = g.And(grantPrev, sel.Not())
		grants = append(grants, grant)
		g.AddPO(fmt.Sprintf("grant%d", b), grant)
	}
	// Structurally different duplicate of the last grant for sweeping.
	var sels []aig.Lit
	for b := 0; b < 16; b++ {
		sels = append(sels, g.And(req[b], bankSel[b]))
	}
	inv := make([]aig.Lit, 15)
	for b := 0; b < 15; b++ {
		inv[b] = sels[b].Not()
	}
	g.AddPO("grant15_dup", g.And(sels[15], andBalanced(g, inv)))
	// Refresh: counter compare plus command decode.
	needRefresh := g.EqualWord(count, aig.ConstWord(12, 0xA5))
	isRefreshCmd := g.And(g.And(cmd[0], cmd[1].Not()), g.And(g.And(cmd[2], cmd[3]), g.And(cmd[4].Not(), cmd[5])))
	g.AddPO("refresh", g.Or(needRefresh, isRefreshCmd))
	// Next counter value.
	next, _ := g.Add(count, aig.ConstWord(12, 1), aig.False)
	g.AddPOWord("cnt_n", g.MuxWord(needRefresh, aig.ConstWord(12, 0), next))
	// Duplicated hit aggregation (linear vs balanced).
	g.AddPO("anyhit", g.OrN(hits))
	g.AddPO("anyhit2", orBalanced(g, hits))
	return g
}

func buildE64() *aig.Graph {
	// e64-like: 64 cascaded stages, each output depends on a running chain.
	g := aig.New("e64")
	in := make([]aig.Lit, 65)
	for i := range in {
		in[i] = g.AddPI(fmt.Sprintf("e%d", i))
	}
	chain := in[64]
	for i := 0; i < 64; i++ {
		chain = g.And(chain.Not(), in[i]).NotIf(i%2 == 0)
		g.AddPO(fmt.Sprintf("o%d", i), chain)
	}
	// Wide-AND prefixes built linearly and balanced: provable equivalences
	// whose cones almost never activate under random vectors.
	for _, k := range []int{15, 31, 47, 63} {
		g.AddPO(fmt.Sprintf("and%d", k), g.AndN(in[:k+1]))
		g.AddPO(fmt.Sprintf("and%d_dup", k), andBalanced(g, in[:k+1]))
	}
	return g
}

func buildDes() *aig.Graph {
	// DES-like: XOR key mixing followed by random 6->4 S-box lookups and a
	// permutation, twice (two rounds).
	g := aig.New("des")
	rng := rand.New(rand.NewSource(seedOf("des")))
	data := g.NewWordPIs("d", 48)
	key := g.NewWordPIs("k", 48)
	state := g.XorWord(data, key)
	for round := 0; round < 2; round++ {
		var next aig.Word
		for s := 0; s < 8; s++ {
			box := state[s*6 : s*6+6]
			for o := 0; o < 4; o++ {
				// Random 6-input function as S-box bit.
				var minterms []aig.Lit
				for m := 0; m < 64; m++ {
					if rng.Intn(2) == 0 {
						continue
					}
					term := aig.True
					for b := 0; b < 6; b++ {
						term = g.And(term, box[b].NotIf(m&(1<<uint(b)) == 0))
					}
					minterms = append(minterms, term)
				}
				next = append(next, orBalanced(g, minterms))
			}
		}
		// Expand back to 48 by duplicating with permutation.
		perm := rng.Perm(len(next))
		for len(next) < 48 {
			next = append(next, next[perm[len(next)-32]])
		}
		state = g.XorWord(next[:48], key)
	}
	g.AddPOWord("out", state[:32])
	return g
}

// itcBench mimics the ITC'99 "_C" circuits: the combinational next-state
// logic of a small processor-like design — ALU slice, comparators, mux
// trees and decoders over state and input words.
func itcBench(name string, wordW, blocks int) func() *aig.Graph {
	return func() *aig.Graph {
		rng := rand.New(rand.NewSource(seedOf(name)))
		g := aig.New(name)
		state := g.NewWordPIs("st", wordW*2)
		data := g.NewWordPIs("in", wordW)
		op := make([]aig.Lit, 3)
		for i := range op {
			op[i] = g.AddPI(fmt.Sprintf("op%d", i))
		}
		a := state[:wordW]
		b := state[wordW:]
		var lastR, lastD aig.Word
		var lastC aig.Lit
		for blk := 0; blk < blocks; blk++ {
			r := aluCore(g, a, b, op)
			cmp := g.LessThan(r, data)
			sum, _ := g.Add(r, data, cmp)
			lastR, lastD, lastC = r, data, cmp
			// Random control: decode a few state bits, gate the result.
			sel := aig.True
			for k := 0; k < 3; k++ {
				sel = g.And(sel, state[rng.Intn(len(state))].NotIf(rng.Intn(2) == 1))
			}
			nextA := g.MuxWord(sel, sum, r)
			nextB := g.MuxWord(cmp, a, b)
			a, b = nextA, nextB
		}
		g.AddPOWord("na", a)
		g.AddPOWord("nb", b)
		// Duplicate of the final adder through the generate/propagate
		// formulation, plus near-constant equality flags.
		g.AddPOWord("na2", gpAdder(g, lastR, lastD, lastC))
		g.AddPO("halt", g.EqualWord(a, b))
		return g
	}
}

func init() {
	// VTR / MCNC two-level and random-logic control benchmarks.
	register("alu4", "VTR", buildALU4)
	register("apex1", "VTR", sopBench("apex1", 45, 48, 300, 10, 6, 8))
	register("apex2", "VTR", sopBench("apex2", 39, 6, 220, 24, 7, 2))
	register("apex3", "VTR", sopBench("apex3", 54, 48, 300, 9, 6, 8))
	register("apex4", "VTR", sopBench("apex4", 9, 38, 260, 14, 6, 6))
	register("apex5", "VTR", sopBench("apex5", 64, 64, 220, 7, 5, 8))
	register("cps", "VTR", sopBench("cps", 24, 80, 280, 9, 6, 8))
	register("dalu", "VTR", sopBench("dalu", 40, 32, 180, 7, 5, 5))
	register("des", "VTR", buildDes)
	register("e64", "VTR", buildE64)
	register("ex1010", "VTR", sopBench("ex1010", 10, 20, 400, 20, 7, 5))
	register("ex5p", "VTR", sopBench("ex5p", 8, 56, 220, 11, 6, 6))
	register("i10", "VTR", sopBench("i10", 40, 48, 260, 9, 6, 8))
	register("k2", "VTR", sopBench("k2", 45, 40, 200, 8, 6, 5))
	register("misex3", "VTR", sopBench("misex3", 14, 28, 280, 13, 7, 5))
	register("misex3c", "VTR", sopBench("misex3c", 14, 28, 160, 8, 6, 3))
	register("pdc", "VTR", sopBench("pdc", 16, 60, 440, 16, 7, 8))
	register("seq", "VTR", sopBench("seq", 41, 48, 320, 11, 6, 8))
	register("spla", "VTR", sopBench("spla", 16, 60, 400, 14, 7, 8))
	register("table3", "VTR", sopBench("table3", 14, 28, 240, 11, 7, 5))
	register("table5", "VTR", sopBench("table5", 17, 30, 240, 11, 7, 5))

	// EPFL arithmetic and control benchmarks.
	register("sin", "EPFL", buildSin)
	register("square", "EPFL", buildSquare)
	register("log2", "EPFL", buildLog2)
	register("cordic", "EPFL", buildCordic)
	register("voter", "EPFL", buildVoter)
	register("dec", "EPFL", buildDec)
	register("arbiter", "EPFL", buildArbiter)
	register("priority", "EPFL", buildPriority)
	register("m_ctrl", "EPFL", buildMemCtrl)

	// ITC'99 combinational next-state circuits.
	register("b14_C", "ITC99", itcBench("b14_C", 10, 3))
	register("b14_C2", "ITC99", itcBench("b14_C2", 10, 3))
	register("b15_C", "ITC99", itcBench("b15_C", 12, 4))
	register("b15_C2", "ITC99", itcBench("b15_C2", 12, 4))
	register("b17_C", "ITC99", itcBench("b17_C", 14, 5))
	register("b17_C2", "ITC99", itcBench("b17_C2", 14, 5))
	register("b20_C", "ITC99", itcBench("b20_C", 12, 5))
	register("b20_C2", "ITC99", itcBench("b20_C2", 12, 5))
	register("b21_C", "ITC99", itcBench("b21_C", 13, 5))
	register("b21_C2", "ITC99", itcBench("b21_C2", 13, 5))
	register("b22_C", "ITC99", itcBench("b22_C", 14, 6))
	register("b22_C2", "ITC99", itcBench("b22_C2", 14, 6))
}
