package bdd

import (
	"simgen/internal/network"
)

// Builder constructs BDDs for nodes of a LUT network over the network's
// primary inputs, caching one BDD per node — the data structure behind
// BDD sweeping.
type Builder struct {
	M     *Manager
	net   *network.Network
	varOf map[network.NodeID]int
	cache map[network.NodeID]Ref
}

// NewBuilder returns a builder whose manager has one variable per primary
// input, in PI order (a simple static order; good enough for the benchmark
// sizes here, and its blow-up on multipliers is exactly the classic BDD
// failure mode the harness demonstrates).
func NewBuilder(net *network.Network) *Builder {
	b := &Builder{
		M:     New(net.NumPIs()),
		net:   net,
		varOf: make(map[network.NodeID]int, net.NumPIs()),
		cache: make(map[network.NodeID]Ref),
	}
	for i, pi := range net.PIs() {
		b.varOf[pi] = i
	}
	return b
}

// Node returns the BDD of the node's function over the primary inputs.
func (b *Builder) Node(id network.NodeID) (Ref, error) {
	if r, ok := b.cache[id]; ok {
		return r, nil
	}
	for _, cid := range b.net.FaninCone(id) {
		if _, done := b.cache[cid]; done {
			continue
		}
		r, err := b.build(cid)
		if err != nil {
			return False, err
		}
		b.cache[cid] = r
	}
	return b.cache[id], nil
}

func (b *Builder) build(id network.NodeID) (Ref, error) {
	nd := b.net.Node(id)
	switch nd.Kind {
	case network.KindPI:
		return b.M.Var(b.varOf[id])
	case network.KindConst:
		if nd.Func.IsConst1() {
			return True, nil
		}
		return False, nil
	}
	// OR over the on-set cubes, each an AND of fanin BDD literals.
	on, _ := b.net.Covers(id)
	out := False
	for _, cube := range on {
		term := True
		for i, f := range nd.Fanins {
			v, cared := cube.Has(i)
			if !cared {
				continue
			}
			fb := b.cache[f]
			var err error
			if !v {
				fb, err = b.M.Not(fb)
				if err != nil {
					return False, err
				}
			}
			term, err = b.M.And(term, fb)
			if err != nil {
				return False, err
			}
		}
		var err error
		out, err = b.M.Or(out, term)
		if err != nil {
			return False, err
		}
	}
	return out, nil
}

// Equivalent reports whether two nodes compute the same function, by
// canonicity a single reference comparison once both BDDs are built.
func (b *Builder) Equivalent(x, y network.NodeID) (bool, error) {
	rx, err := b.Node(x)
	if err != nil {
		return false, err
	}
	ry, err := b.Node(y)
	if err != nil {
		return false, err
	}
	return rx == ry, nil
}

// Counterexample returns an input assignment on which the two nodes
// differ; ok is false when they are equivalent.
func (b *Builder) Counterexample(x, y network.NodeID) (assign []bool, ok bool, err error) {
	rx, err := b.Node(x)
	if err != nil {
		return nil, false, err
	}
	ry, err := b.Node(y)
	if err != nil {
		return nil, false, err
	}
	diff, err := b.M.Xor(rx, ry)
	if err != nil {
		return nil, false, err
	}
	assign, ok = b.M.AnySat(diff)
	return assign, ok, nil
}
