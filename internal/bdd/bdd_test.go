package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"simgen/internal/network"
	"simgen/internal/sim"
	"simgen/internal/tt"
)

func mustVar(t testing.TB, m *Manager, v int) Ref {
	t.Helper()
	r, err := m.Var(v)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTerminalsAndVar(t *testing.T) {
	m := New(3)
	x := mustVar(t, m, 0)
	if m.Eval(x, []bool{true, false, false}) != true {
		t.Fatal("var eval wrong")
	}
	if m.Eval(x, []bool{false, true, true}) != false {
		t.Fatal("var eval wrong")
	}
	if m.Eval(True, []bool{false, false, false}) != true || m.Eval(False, []bool{true, true, true}) != false {
		t.Fatal("terminal eval wrong")
	}
	if _, err := m.Var(5); err == nil {
		t.Fatal("out-of-range variable accepted")
	}
}

func TestCanonicity(t *testing.T) {
	// Two different constructions of the same function must yield the
	// same reference.
	m := New(3)
	a, b, c := mustVar(t, m, 0), mustVar(t, m, 1), mustVar(t, m, 2)
	// (a&b)|c  vs  !( (!a|!b) & !c )
	ab, _ := m.And(a, b)
	f1, _ := m.Or(ab, c)
	na, _ := m.Not(a)
	nb, _ := m.Not(b)
	nc, _ := m.Not(c)
	or1, _ := m.Or(na, nb)
	and1, _ := m.And(or1, nc)
	f2, _ := m.Not(and1)
	if f1 != f2 {
		t.Fatalf("canonicity violated: %d vs %d", f1, f2)
	}
}

func TestOpsAgainstTruthTables(t *testing.T) {
	// Property: BDD ops agree with tt ops on random 6-var functions built
	// from random expression trees.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		m := New(6)
		vars := make([]Ref, 6)
		tts := make([]tt.Table, 6)
		for i := range vars {
			vars[i] = mustVar(t, m, i)
			tts[i] = tt.Var(6, i)
		}
		refs := append([]Ref(nil), vars...)
		tabs := append([]tt.Table(nil), tts...)
		for step := 0; step < 15; step++ {
			i, j := rng.Intn(len(refs)), rng.Intn(len(refs))
			var r Ref
			var tab tt.Table
			var err error
			switch rng.Intn(4) {
			case 0:
				r, err = m.And(refs[i], refs[j])
				tab = tabs[i].And(tabs[j])
			case 1:
				r, err = m.Or(refs[i], refs[j])
				tab = tabs[i].Or(tabs[j])
			case 2:
				r, err = m.Xor(refs[i], refs[j])
				tab = tabs[i].Xor(tabs[j])
			default:
				r, err = m.Not(refs[i])
				tab = tabs[i].Not()
			}
			if err != nil {
				t.Fatal(err)
			}
			refs = append(refs, r)
			tabs = append(tabs, tab)
		}
		// Verify the last few functions on all 64 assignments.
		for k := len(refs) - 5; k < len(refs); k++ {
			for mnt := 0; mnt < 64; mnt++ {
				assign := make([]bool, 6)
				for v := 0; v < 6; v++ {
					assign[v] = mnt&(1<<v) != 0
				}
				if m.Eval(refs[k], assign) != tabs[k].Bit(mnt) {
					t.Fatalf("trial %d: BDD disagrees with truth table at minterm %d", trial, mnt)
				}
			}
		}
	}
}

func TestAnySat(t *testing.T) {
	m := New(4)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	nb, _ := m.Not(b)
	f, _ := m.And(a, nb) // a & !b
	assign, ok := m.AnySat(f)
	if !ok {
		t.Fatal("satisfiable function reported unsat")
	}
	if !m.Eval(f, assign) {
		t.Fatal("AnySat returned a non-model")
	}
	if _, ok := m.AnySat(False); ok {
		t.Fatal("False reported satisfiable")
	}
	if assign, ok := m.AnySat(True); !ok || len(assign) != 4 {
		t.Fatal("True must be satisfiable")
	}
}

func TestSatCount(t *testing.T) {
	m := New(3)
	a, b := mustVar(t, m, 0), mustVar(t, m, 1)
	ab, _ := m.And(a, b) // 2 of 8 assignments
	if got := m.SatCount(ab); got != 2 {
		t.Fatalf("SatCount(a&b) = %v, want 2", got)
	}
	or, _ := m.Or(a, b) // 6 of 8
	if got := m.SatCount(or); got != 6 {
		t.Fatalf("SatCount(a|b) = %v, want 6", got)
	}
	if m.SatCount(True) != 8 || m.SatCount(False) != 0 {
		t.Fatal("terminal counts wrong")
	}
}

func TestSatCountQuick(t *testing.T) {
	// Property: SatCount equals the truth table's CountOnes.
	check := func(w uint16) bool {
		fn := tt.FromWords(4, []uint64{uint64(w)})
		m := New(4)
		r := buildFromTable(t, m, fn)
		return int(m.SatCount(r)) == fn.CountOnes()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func buildFromTable(t testing.TB, m *Manager, fn tt.Table) Ref {
	t.Helper()
	out := False
	for mnt := 0; mnt < fn.NumMinterms(); mnt++ {
		if !fn.Bit(mnt) {
			continue
		}
		term := True
		for v := 0; v < fn.NumVars(); v++ {
			x := mustVar(t, m, v)
			if mnt&(1<<v) == 0 {
				nx, err := m.Not(x)
				if err != nil {
					t.Fatal(err)
				}
				x = nx
			}
			var err error
			term, err = m.And(term, x)
			if err != nil {
				t.Fatal(err)
			}
		}
		var err error
		out, err = m.Or(out, term)
		if err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestNodeLimit(t *testing.T) {
	m := New(16)
	m.MaxNodes = 64
	// An XOR chain over many variables needs more than 64 nodes... build
	// until the limit trips.
	f := False
	var err error
	for v := 0; v < 16 && err == nil; v++ {
		var x Ref
		x, err = m.Var(v)
		if err != nil {
			break
		}
		f, err = m.Xor(f, x)
	}
	// The XOR chain of 16 vars has ~32 nodes... force a blow-up with a
	// multiplier-like construction instead if no error yet.
	if err == nil {
		a, _ := m.Var(0)
		for i := 0; err == nil && i < 14; i++ {
			b, _ := m.Var(i + 1)
			var and1, or1 Ref
			and1, err = m.And(f, b)
			if err != nil {
				break
			}
			or1, err = m.Or(and1, a)
			if err != nil {
				break
			}
			f, err = m.Xor(f, or1)
		}
	}
	if err == nil {
		t.Skip("node limit not reached by this construction")
	}
	if err != ErrNodeLimit {
		t.Fatalf("err = %v, want ErrNodeLimit", err)
	}
}

func TestSize(t *testing.T) {
	m := New(3)
	a, b, c := mustVar(t, m, 0), mustVar(t, m, 1), mustVar(t, m, 2)
	ab, _ := m.And(a, b)
	abc, _ := m.And(ab, c)
	if m.Size(abc) != 3 {
		t.Fatalf("Size(a&b&c) = %d, want 3", m.Size(abc))
	}
	if m.Size(True) != 0 {
		t.Fatal("terminal size wrong")
	}
}

func TestBuilderAgainstSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		net := randomNet(rng, 5, 15)
		b := NewBuilder(net)
		root := net.POs()[0].Driver
		r, err := b.Node(root)
		if err != nil {
			t.Fatal(err)
		}
		for mnt := 0; mnt < 32; mnt++ {
			assign := make([]bool, 5)
			for v := 0; v < 5; v++ {
				assign[v] = mnt&(1<<v) != 0
			}
			want := sim.SimulateVector(net, assign)[root]
			if b.M.Eval(r, assign) != want {
				t.Fatalf("trial %d minterm %d: BDD disagrees with simulation", trial, mnt)
			}
		}
	}
}

func TestBuilderEquivalence(t *testing.T) {
	n := network.New("eq")
	a := n.AddPI("a")
	b := n.AddPI("b")
	and2 := tt.Var(2, 0).And(tt.Var(2, 1))
	inv := tt.Var(1, 0).Not()
	or2 := tt.Var(2, 0).Or(tt.Var(2, 1))
	g := n.AddLUT("g", []network.NodeID{a, b}, and2)
	na := n.AddLUT("na", []network.NodeID{a}, inv)
	nb := n.AddLUT("nb", []network.NodeID{b}, inv)
	o := n.AddLUT("o", []network.NodeID{na, nb}, or2)
	h := n.AddLUT("h", []network.NodeID{o}, inv)
	x := n.AddLUT("x", []network.NodeID{a, b}, or2)
	n.AddPO("p", g)
	n.AddPO("q", h)
	n.AddPO("r", x)

	builder := NewBuilder(n)
	if eq, err := builder.Equivalent(g, h); err != nil || !eq {
		t.Fatalf("equivalent nodes not detected: eq=%v err=%v", eq, err)
	}
	if eq, err := builder.Equivalent(g, x); err != nil || eq {
		t.Fatalf("inequivalent nodes merged: eq=%v err=%v", eq, err)
	}
	cex, ok, err := builder.Counterexample(g, x)
	if err != nil || !ok {
		t.Fatalf("no counterexample: %v", err)
	}
	out := sim.SimulateVector(n, cex)
	if out[g] == out[x] {
		t.Fatal("counterexample does not separate")
	}
	if _, ok, _ := builder.Counterexample(g, h); ok {
		t.Fatal("counterexample for equivalent pair")
	}
}

func randomNet(rng *rand.Rand, npis, nluts int) *network.Network {
	n := network.New("rand")
	var ids []network.NodeID
	for i := 0; i < npis; i++ {
		ids = append(ids, n.AddPI(""))
	}
	for i := 0; i < nluts; i++ {
		k := 1 + rng.Intn(3)
		fanins := map[network.NodeID]bool{}
		for len(fanins) < k {
			fanins[ids[rng.Intn(len(ids))]] = true
		}
		fi := make([]network.NodeID, 0, k)
		for f := range fanins {
			fi = append(fi, f)
		}
		fn := tt.New(k)
		for m := 0; m < 1<<k; m++ {
			fn.SetBit(m, rng.Intn(2) == 1)
		}
		ids = append(ids, n.AddLUT("", fi, fn))
	}
	n.AddPO("o", ids[len(ids)-1])
	return n
}
