// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with a unique table and memoized ITE — the classic verification engine
// that SAT sweeping displaced (Kuehlmann & Krohm, DAC'97, cited as the
// starting point of the paper's related work). The sweep package can use it
// as an alternative equivalence-checking backend, which lets the benchmark
// harness compare BDD- and SAT-based sweeping.
package bdd

import (
	"errors"
	"fmt"
)

// Ref is a reference to a BDD node. The constants False and True are the
// terminal nodes; other values index the manager's node table. Complement
// edges are not used — negation materializes nodes — keeping the
// implementation simple and the semantics obvious.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level    int32 // variable level; terminals use a sentinel
	lo, hi   Ref
	nextHash int32 // unique-table chaining
}

const terminalLevel = int32(1<<31 - 1)

// ErrNodeLimit is returned when a manager exceeds its node budget — BDD
// blow-up, the reason the field moved to SAT.
var ErrNodeLimit = errors.New("bdd: node limit exceeded")

// Manager owns the node table for a fixed variable order: level 0 is the
// topmost (first tested) variable.
type Manager struct {
	nvars   int
	nodes   []node
	buckets []int32
	iteMemo map[[3]Ref]Ref

	// MaxNodes bounds the node table; 0 means the default (1<<22).
	MaxNodes int
}

// New returns a manager for nvars variables.
func New(nvars int) *Manager {
	m := &Manager{
		nvars:   nvars,
		iteMemo: make(map[[3]Ref]Ref),
	}
	m.nodes = make([]node, 2, 1024)
	m.nodes[False] = node{level: terminalLevel}
	m.nodes[True] = node{level: terminalLevel}
	m.buckets = make([]int32, 1024)
	for i := range m.buckets {
		m.buckets[i] = -1
	}
	return m
}

// NumVars returns the number of variables.
func (m *Manager) NumVars() int { return m.nvars }

// NumNodes returns the number of live nodes including terminals.
func (m *Manager) NumNodes() int { return len(m.nodes) }

func (m *Manager) hash(level int32, lo, hi Ref) uint32 {
	h := uint64(level)*0x9E3779B97F4A7C15 ^ uint64(lo)*0xBF58476D1CE4E5B9 ^ uint64(hi)*0x94D049BB133111EB
	return uint32(h>>32) & uint32(len(m.buckets)-1)
}

// mk returns the canonical node (level, lo, hi), applying the reduction
// rules: equal children collapse, duplicates are shared.
func (m *Manager) mk(level int32, lo, hi Ref) (Ref, error) {
	if lo == hi {
		return lo, nil
	}
	h := m.hash(level, lo, hi)
	for i := m.buckets[h]; i >= 0; i = m.nodes[i].nextHash {
		n := &m.nodes[i]
		if n.level == level && n.lo == lo && n.hi == hi {
			return Ref(i), nil
		}
	}
	limit := m.MaxNodes
	if limit == 0 {
		limit = 1 << 22
	}
	if len(m.nodes) >= limit {
		return False, ErrNodeLimit
	}
	ref := Ref(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi, nextHash: m.buckets[h]})
	m.buckets[h] = int32(ref)
	if len(m.nodes) > 2*len(m.buckets) {
		m.rehash()
	}
	return ref, nil
}

func (m *Manager) rehash() {
	m.buckets = make([]int32, 2*len(m.buckets))
	for i := range m.buckets {
		m.buckets[i] = -1
	}
	for i := 2; i < len(m.nodes); i++ {
		n := &m.nodes[i]
		h := m.hash(n.level, n.lo, n.hi)
		n.nextHash = m.buckets[h]
		m.buckets[h] = int32(i)
	}
}

// Var returns the BDD of variable v.
func (m *Manager) Var(v int) (Ref, error) {
	if v < 0 || v >= m.nvars {
		return False, fmt.Errorf("bdd: variable %d out of range", v)
	}
	return m.mk(int32(v), False, True)
}

// level returns the variable level of a reference.
func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// ITE computes if-then-else(f, g, h), the universal BDD operation.
func (m *Manager) ITE(f, g, h Ref) (Ref, error) {
	// Terminal cases.
	switch {
	case f == True:
		return g, nil
	case f == False:
		return h, nil
	case g == h:
		return g, nil
	case g == True && h == False:
		return f, nil
	}
	key := [3]Ref{f, g, h}
	if r, ok := m.iteMemo[key]; ok {
		return r, nil
	}
	// Split on the top variable.
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	fLo, fHi := m.cofactors(f, top)
	gLo, gHi := m.cofactors(g, top)
	hLo, hHi := m.cofactors(h, top)
	lo, err := m.ITE(fLo, gLo, hLo)
	if err != nil {
		return False, err
	}
	hi, err := m.ITE(fHi, gHi, hHi)
	if err != nil {
		return False, err
	}
	r, err := m.mk(top, lo, hi)
	if err != nil {
		return False, err
	}
	m.iteMemo[key] = r
	return r, nil
}

func (m *Manager) cofactors(r Ref, level int32) (lo, hi Ref) {
	n := &m.nodes[r]
	if n.level != level {
		return r, r
	}
	return n.lo, n.hi
}

// And returns f AND g.
func (m *Manager) And(f, g Ref) (Ref, error) { return m.ITE(f, g, False) }

// Or returns f OR g.
func (m *Manager) Or(f, g Ref) (Ref, error) { return m.ITE(f, True, g) }

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Ref) (Ref, error) {
	ng, err := m.Not(g)
	if err != nil {
		return False, err
	}
	return m.ITE(f, ng, g)
}

// Not returns the complement of f.
func (m *Manager) Not(f Ref) (Ref, error) { return m.ITE(f, False, True) }

// Eval evaluates the function under the assignment (assign[v] is variable
// v's value).
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f != True && f != False {
		n := &m.nodes[f]
		if assign[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// AnySat returns a satisfying assignment of f, or ok=false when f is the
// constant False. Unconstrained variables are reported as false.
func (m *Manager) AnySat(f Ref) (assign []bool, ok bool) {
	if f == False {
		return nil, false
	}
	assign = make([]bool, m.nvars)
	for f != True {
		n := &m.nodes[f]
		if n.lo != False {
			f = n.lo
		} else {
			assign[n.level] = true
			f = n.hi
		}
	}
	return assign, true
}

// SatCount returns the number of satisfying assignments of f over all
// nvars variables, computed as the satisfaction probability under uniform
// inputs (skipped levels need no correction in that formulation) scaled by
// 2^nvars.
func (m *Manager) SatCount(f Ref) float64 {
	memo := map[Ref]float64{}
	var prob func(r Ref) float64
	prob = func(r Ref) float64 {
		switch r {
		case False:
			return 0
		case True:
			return 1
		}
		if p, ok := memo[r]; ok {
			return p
		}
		n := &m.nodes[r]
		p := 0.5*prob(n.lo) + 0.5*prob(n.hi)
		memo[r] = p
		return p
	}
	total := 1.0
	for i := 0; i < m.nvars; i++ {
		total *= 2
	}
	return prob(f) * total
}

// Size returns the number of nodes reachable from f (excluding terminals).
func (m *Manager) Size(f Ref) int {
	seen := map[Ref]bool{}
	var walk func(Ref)
	walk = func(r Ref) {
		if r == True || r == False || seen[r] {
			return
		}
		seen[r] = true
		walk(m.nodes[r].lo)
		walk(m.nodes[r].hi)
	}
	walk(f)
	return len(seen)
}
