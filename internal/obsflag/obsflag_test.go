package obsflag

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"simgen/internal/obs"
)

func TestRegisterDefaultsToNop(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	s, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	if s.Tracer != obs.Nop {
		t.Error("with no flags set, Tracer should be obs.Nop")
	}
	if _, ok := s.Report(); ok {
		t.Error("Report should not be available without -report")
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestOpenEmitClose(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{
		Trace:  filepath.Join(dir, "t.jsonl"),
		Report: filepath.Join(dir, "r.json"),
	}
	s, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	s.Tracer.Emit(obs.Event{Kind: obs.KindSweepStart, Workers: 2})
	s.Tracer.Emit(obs.Event{Kind: obs.KindObligation, Class: 1, A: 2, B: 3, Pending: 1})
	s.Tracer.Emit(obs.Event{Kind: obs.KindResolve, Class: 1, A: 2, B: 3,
		Verdict: obs.VerdictEqual, Dur: time.Millisecond})
	s.Tracer.Emit(obs.Event{Kind: obs.KindSweepDone, Cost: 5})

	if rep, ok := s.Report(); !ok {
		t.Fatal("Report should be available with -report set")
	} else if rep.Obligations.Scheduled != 1 || rep.Obligations.Equal != 1 {
		t.Errorf("live report wrong: %+v", rep.Obligations)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	trace, err := os.ReadFile(f.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(splitLines(trace)); n != 4 {
		t.Errorf("trace has %d lines, want 4", n)
	}
	raw, err := os.ReadFile(f.Report)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report file is not a Report: %v", err)
	}
	if rep.FinalCost != 5 {
		t.Errorf("report final cost %d, want 5", rep.FinalCost)
	}
}

// TestOpenFailsFastOnBadPaths: unwritable -trace or -report paths must fail
// at Open (a usage error before the run), not after the sweep finished.
func TestOpenFailsFastOnBadPaths(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing-dir", "out")
	for _, f := range []*Flags{{Trace: bad}, {Report: bad}} {
		if s, err := f.Open(); err == nil {
			s.Close()
			t.Errorf("Open(%+v) should fail on an unwritable path", *f)
		}
	}
	// A failed later stage must clean up earlier ones: trace file created,
	// then the metrics listener fails.
	f := &Flags{
		Trace:       filepath.Join(t.TempDir(), "t.jsonl"),
		MetricsAddr: "999.999.999.999:0",
	}
	if s, err := f.Open(); err == nil {
		s.Close()
		t.Error("Open should fail on an unlistenable metrics address")
	}
}

// TestTwoSequentialRunsOneProcess is the regression test for the one-run-
// per-process assumption the CLI exit closures baked in: a resident service
// opens and closes one obs stack per job, so per-run tracer/collector
// instances must be independently closeable — closing the first run must
// not flush, close, or otherwise disturb the second.
func TestTwoSequentialRunsOneProcess(t *testing.T) {
	dir := t.TempDir()
	s, err := (&Flags{}).Open() // process-level stack with no default sinks
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	runFile := func(i int) (trace, report string) {
		return filepath.Join(dir, "t"+string(rune('0'+i))+".jsonl"),
			filepath.Join(dir, "r"+string(rune('0'+i))+".json")
	}

	emit := func(r *Run, cost int64) {
		r.Tracer.Emit(obs.Event{Kind: obs.KindSweepStart, Workers: 1})
		r.Tracer.Emit(obs.Event{Kind: obs.KindObligation, Class: 1, A: 2, B: 3, Pending: 1})
		r.Tracer.Emit(obs.Event{Kind: obs.KindResolve, Class: 1, A: 2, B: 3, Verdict: obs.VerdictEqual})
		r.Tracer.Emit(obs.Event{Kind: obs.KindSweepDone, Cost: cost})
	}
	check := func(i int, wantCost int64) {
		trace, report := runFile(i)
		raw, err := os.ReadFile(trace)
		if err != nil {
			t.Fatalf("run %d trace: %v", i, err)
		}
		if n := len(splitLines(raw)); n != 4 {
			t.Errorf("run %d trace has %d lines, want 4", i, n)
		}
		rraw, err := os.ReadFile(report)
		if err != nil {
			t.Fatalf("run %d report: %v", i, err)
		}
		var rep obs.Report
		if err := json.Unmarshal(rraw, &rep); err != nil {
			t.Fatalf("run %d report not a Report: %v", i, err)
		}
		if rep.FinalCost != wantCost {
			t.Errorf("run %d report cost %d, want %d", i, rep.FinalCost, wantCost)
		}
		if rep.Obligations.Scheduled != 1 {
			t.Errorf("run %d report scheduled %d, want 1 (cross-run state bled through)",
				i, rep.Obligations.Scheduled)
		}
	}

	// Two sequential jobs: each gets a fresh stack; closing the first must
	// leave the second fully functional.
	for i, cost := range []int64{11, 22} {
		tp, rp := runFile(i)
		run, err := s.NewRun(tp, rp)
		if err != nil {
			t.Fatal(err)
		}
		emit(run, cost)
		if err := run.Close(); err != nil {
			t.Fatalf("run %d Close: %v", i, err)
		}
		if err := run.Close(); err != nil {
			t.Fatalf("run %d second Close should be an idempotent no-op: %v", i, err)
		}
	}
	check(0, 11)
	check(1, 22)

	// Two overlapping jobs: closing run 2 mid-flight must not flush or
	// truncate run 3's still-open sinks.
	tp2, rp2 := runFile(2)
	run2, err := s.NewRun(tp2, rp2)
	if err != nil {
		t.Fatal(err)
	}
	tp3, rp3 := runFile(3)
	run3, err := s.NewRun(tp3, rp3)
	if err != nil {
		t.Fatal(err)
	}
	emit(run2, 33)
	run2.Tracer.Emit(obs.Event{Kind: obs.KindSweepStart}) // extra line: 5 total
	if err := run2.Close(); err != nil {
		t.Fatal(err)
	}
	emit(run3, 44) // run 3 keeps emitting after run 2 closed
	if err := run3.Close(); err != nil {
		t.Fatal(err)
	}
	check(3, 44)
	if raw, _ := os.ReadFile(tp2); len(splitLines(raw)) != 5 {
		t.Errorf("run 2 trace has %d lines, want 5", len(splitLines(raw)))
	}
}

func splitLines(b []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, c := range b {
		if c == '\n' {
			lines = append(lines, b[start:i])
			start = i + 1
		}
	}
	if start < len(b) {
		lines = append(lines, b[start:])
	}
	return lines
}
