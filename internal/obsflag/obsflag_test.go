package obsflag

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"simgen/internal/obs"
)

func TestRegisterDefaultsToNop(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	s, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	if s.Tracer != obs.Nop {
		t.Error("with no flags set, Tracer should be obs.Nop")
	}
	if _, ok := s.Report(); ok {
		t.Error("Report should not be available without -report")
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestOpenEmitClose(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{
		Trace:  filepath.Join(dir, "t.jsonl"),
		Report: filepath.Join(dir, "r.json"),
	}
	s, err := f.Open()
	if err != nil {
		t.Fatal(err)
	}
	s.Tracer.Emit(obs.Event{Kind: obs.KindSweepStart, Workers: 2})
	s.Tracer.Emit(obs.Event{Kind: obs.KindObligation, Class: 1, A: 2, B: 3, Pending: 1})
	s.Tracer.Emit(obs.Event{Kind: obs.KindResolve, Class: 1, A: 2, B: 3,
		Verdict: obs.VerdictEqual, Dur: time.Millisecond})
	s.Tracer.Emit(obs.Event{Kind: obs.KindSweepDone, Cost: 5})

	if rep, ok := s.Report(); !ok {
		t.Fatal("Report should be available with -report set")
	} else if rep.Obligations.Scheduled != 1 || rep.Obligations.Equal != 1 {
		t.Errorf("live report wrong: %+v", rep.Obligations)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	trace, err := os.ReadFile(f.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(splitLines(trace)); n != 4 {
		t.Errorf("trace has %d lines, want 4", n)
	}
	raw, err := os.ReadFile(f.Report)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report file is not a Report: %v", err)
	}
	if rep.FinalCost != 5 {
		t.Errorf("report final cost %d, want 5", rep.FinalCost)
	}
}

// TestOpenFailsFastOnBadPaths: unwritable -trace or -report paths must fail
// at Open (a usage error before the run), not after the sweep finished.
func TestOpenFailsFastOnBadPaths(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing-dir", "out")
	for _, f := range []*Flags{{Trace: bad}, {Report: bad}} {
		if s, err := f.Open(); err == nil {
			s.Close()
			t.Errorf("Open(%+v) should fail on an unwritable path", *f)
		}
	}
	// A failed later stage must clean up earlier ones: trace file created,
	// then the metrics listener fails.
	f := &Flags{
		Trace:       filepath.Join(t.TempDir(), "t.jsonl"),
		MetricsAddr: "999.999.999.999:0",
	}
	if s, err := f.Open(); err == nil {
		s.Close()
		t.Error("Open should fail on an unlistenable metrics address")
	}
}

func splitLines(b []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, c := range b {
		if c == '\n' {
			lines = append(lines, b[start:i])
			start = i + 1
		}
	}
	if start < len(b) {
		lines = append(lines, b[start:])
	}
	return lines
}
