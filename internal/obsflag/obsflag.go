// Package obsflag wires the observability CLI flags shared by the
// command-line tools (-trace, -report, -metrics-addr) into a composed
// tracer, an end-of-run report writer, and an HTTP metrics endpoint.
package obsflag

import (
	"flag"
	"fmt"
	"os"

	"simgen/internal/obs"
)

// Flags holds the raw values of the observability flags.
type Flags struct {
	Trace       string
	Report      string
	MetricsAddr string
}

// Register installs the observability flags on fs and returns the holder
// their values are parsed into.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Trace, "trace", "", "write a JSONL event trace to this file")
	fs.StringVar(&f.Report, "report", "", "write a structured end-of-run report (JSON) to this file")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve runtime metrics over HTTP on this address (e.g. localhost:0)")
	return f
}

// Setup is the live observability stack built from parsed flags. Tracer is
// never nil: with every flag off it is obs.Nop and costs nothing.
type Setup struct {
	Tracer obs.Tracer

	flags      Flags
	traceFile  *os.File
	jsonl      *obs.JSONL
	reportFile *os.File
	collector  *obs.Collector
	metrics    *obs.Metrics
	stop       func() error
}

// Open materializes the stack: the trace file is created and truncated, the
// metrics endpoint starts listening (its bound address is printed to
// stderr, so ":0" works for tests), and Tracer composes every enabled sink.
func (f *Flags) Open() (*Setup, error) {
	s := &Setup{Tracer: obs.Nop, flags: *f}
	var tracers []obs.Tracer
	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			return nil, err
		}
		s.traceFile = file
		s.jsonl = obs.NewJSONL(file)
		tracers = append(tracers, s.jsonl)
	}
	if f.Report != "" {
		// Create the file up front so an unwritable path is a usage error
		// before the run, not a surprise after an hour of sweeping.
		file, err := os.Create(f.Report)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.reportFile = file
		s.collector = obs.NewCollector()
		tracers = append(tracers, s.collector)
	}
	if f.MetricsAddr != "" {
		s.metrics = obs.NewMetrics()
		addr, stop, err := s.metrics.Serve(f.MetricsAddr)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.stop = stop
		fmt.Fprintf(os.Stderr, "metrics: listening on http://%s/metrics\n", addr)
		tracers = append(tracers, obs.NewMetricsTracer(s.metrics))
	}
	s.Tracer = obs.Multi(tracers...)
	return s, nil
}

// Report returns the aggregated run report; ok is false when -report was
// not requested.
func (s *Setup) Report() (r obs.Report, ok bool) {
	if s.collector == nil {
		return obs.Report{}, false
	}
	return s.collector.Report(), true
}

// Close flushes and tears the stack down: the report file is written, the
// trace file is closed (surfacing any deferred write error), and the
// metrics endpoint is shut. It returns the first error encountered.
func (s *Setup) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.reportFile != nil {
		keep(s.collector.Report().WriteJSON(s.reportFile))
		keep(s.reportFile.Close())
		s.reportFile = nil
	}
	if s.traceFile != nil {
		keep(s.jsonl.Err())
		keep(s.traceFile.Close())
		s.traceFile = nil
	}
	if s.stop != nil {
		keep(s.stop())
		s.stop = nil
	}
	return first
}
