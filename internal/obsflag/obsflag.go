// Package obsflag wires the observability CLI flags shared by the
// command-line tools (-trace, -report, -metrics-addr) into a composed
// tracer, an end-of-run report writer, and an HTTP metrics endpoint.
//
// The stack is split along process/run lines so one process can host many
// runs: a Setup owns the process-level pieces (the metrics registry and its
// HTTP endpoint), while each Run owns one run's trace sink and report
// collector and is independently closeable. The CLI tools are the
// degenerate case — one default Run whose lifetime matches the process —
// but a resident service (cmd/sweepd) mints a fresh Run per job and closes
// each without disturbing the others or the shared metrics endpoint.
package obsflag

import (
	"flag"
	"fmt"
	"io"
	"os"

	"simgen/internal/obs"
)

// Flags holds the raw values of the observability flags.
type Flags struct {
	Trace       string
	Report      string
	MetricsAddr string
}

// Register installs the observability flags on fs and returns the holder
// their values are parsed into.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Trace, "trace", "", "write a JSONL event trace to this file")
	fs.StringVar(&f.Report, "report", "", "write a structured end-of-run report (JSON) to this file")
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve runtime metrics over HTTP on this address (e.g. localhost:0)")
	return f
}

// Run is one run's (or one job's) observability stack: an optional JSONL
// trace sink, an optional report collector, and any extra tracers (e.g. a
// process-wide metrics tracer) composed behind a single Tracer. Closing a
// Run flushes and releases only its own sinks — other live Runs and the
// process-level metrics endpoint are untouched.
type Run struct {
	// Tracer composes every enabled sink; never nil (obs.Nop when the run
	// has no sinks), so callers thread it unconditionally.
	Tracer obs.Tracer

	jsonl     *obs.JSONL
	traceC    io.Closer
	collector *obs.Collector
	reportW   io.WriteCloser
	closed    bool
}

// NewRun composes a per-run stack over the given sinks. traceW receives the
// JSONL event stream and reportW the end-of-run report (either may be nil
// to disable that sink); extra tracers are fanned into the same stream.
// The Run owns both writers and closes them in Close.
func NewRun(traceW, reportW io.WriteCloser, extra ...obs.Tracer) *Run {
	r := &Run{reportW: reportW}
	var tracers []obs.Tracer
	if traceW != nil {
		r.jsonl = obs.NewJSONL(traceW)
		r.traceC = traceW
		tracers = append(tracers, r.jsonl)
	}
	if reportW != nil {
		r.collector = obs.NewCollector()
		tracers = append(tracers, r.collector)
	}
	tracers = append(tracers, extra...)
	r.Tracer = obs.Multi(tracers...)
	return r
}

// OpenRun is NewRun over files: the trace and report files are created (and
// truncated) up front so an unwritable path is a usage error before the
// run, not a surprise after an hour of sweeping. Empty paths disable the
// corresponding sink.
func OpenRun(tracePath, reportPath string, extra ...obs.Tracer) (*Run, error) {
	var traceW, reportW *os.File
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		traceW = f
	}
	if reportPath != "" {
		f, err := os.Create(reportPath)
		if err != nil {
			if traceW != nil {
				traceW.Close()
			}
			return nil, err
		}
		reportW = f
	}
	if traceW == nil && reportW == nil {
		return NewRun(nil, nil, extra...), nil
	}
	// os.File is an io.WriteCloser, but a typed-nil *os.File must become a
	// true nil interface for NewRun's sink checks.
	var tw, rw io.WriteCloser
	if traceW != nil {
		tw = traceW
	}
	if reportW != nil {
		rw = reportW
	}
	return NewRun(tw, rw, extra...), nil
}

// Report returns the run's aggregated report; ok is false when the run has
// no report sink. It may be consulted while the run is still in flight.
func (r *Run) Report() (rep obs.Report, ok bool) {
	if r.collector == nil {
		return obs.Report{}, false
	}
	return r.collector.Report(), true
}

// Close flushes and tears down this run's sinks only: the report is
// rendered and its writer closed, and the trace writer is closed
// (surfacing any deferred write error). Close is idempotent and returns
// the first error encountered.
func (r *Run) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if r.reportW != nil {
		keep(r.collector.Report().WriteJSON(r.reportW))
		keep(r.reportW.Close())
		r.reportW = nil
	}
	if r.traceC != nil {
		keep(r.jsonl.Err())
		keep(r.traceC.Close())
		r.traceC = nil
	}
	return first
}

// Setup is the live observability stack built from parsed flags: the
// process-level metrics endpoint plus one default Run for the flags' trace
// and report paths. Tracer is never nil: with every flag off it is obs.Nop
// and costs nothing.
type Setup struct {
	Tracer obs.Tracer

	run     *Run
	metrics *obs.Metrics
	mt      obs.Tracer // metrics tracer shared by every run; nil without -metrics-addr
	stop    func() error
}

// Open materializes the stack: the metrics endpoint starts listening (its
// bound address is printed to stderr, so ":0" works for tests), the trace
// and report files are created, and Tracer composes every enabled sink.
func (f *Flags) Open() (*Setup, error) {
	s := &Setup{}
	if f.MetricsAddr != "" {
		s.metrics = obs.NewMetrics()
		addr, stop, err := s.metrics.Serve(f.MetricsAddr)
		if err != nil {
			return nil, err
		}
		s.stop = stop
		fmt.Fprintf(os.Stderr, "metrics: listening on http://%s/metrics\n", addr)
		s.mt = obs.NewMetricsTracer(s.metrics)
	}
	run, err := OpenRun(f.Trace, f.Report, s.metricsTracers()...)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.run = run
	s.Tracer = run.Tracer
	return s, nil
}

// metricsTracers returns the shared metrics tracer as a fan-in slice, or
// nothing when -metrics-addr is off.
func (s *Setup) metricsTracers() []obs.Tracer {
	if s.mt == nil {
		return nil
	}
	return []obs.Tracer{s.mt}
}

// Metrics exposes the process-level registry; nil without -metrics-addr.
func (s *Setup) Metrics() *obs.Metrics { return s.metrics }

// NewRun mints an additional, independently closeable run-scoped stack
// writing to the given paths (either may be empty). Its tracer folds into
// the shared metrics endpoint when one is serving. Closing the returned Run
// never flushes or disturbs the default run or any sibling.
func (s *Setup) NewRun(tracePath, reportPath string) (*Run, error) {
	return OpenRun(tracePath, reportPath, s.metricsTracers()...)
}

// Report returns the default run's aggregated report; ok is false when
// -report was not requested.
func (s *Setup) Report() (obs.Report, bool) {
	if s.run == nil {
		return obs.Report{}, false
	}
	return s.run.Report()
}

// Close flushes and tears the stack down: the default run's report is
// written and trace closed, then the metrics endpoint is shut. Runs minted
// with NewRun have their own lifetime and are not touched. It returns the
// first error encountered.
func (s *Setup) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.run != nil {
		keep(s.run.Close())
		s.run = nil
	}
	if s.stop != nil {
		keep(s.stop())
		s.stop = nil
	}
	return first
}
