package chaos

import (
	"sync"
	"testing"
)

// TestScheduleDeterministic: the same seed must reproduce the same action
// sequence for the same consultation order — the replayability contract.
func TestScheduleDeterministic(t *testing.T) {
	draw := func() []Action {
		s := NewSchedule(42, FaultProfile())
		var out []Action
		for i := 0; i < 500; i++ {
			out = append(out, s.At(Point(i%int(NumPoints)), int32(i), int32(i*3)))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical schedules: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestScheduleSeedsDiffer: distinct seeds must explore distinct
// perturbation patterns, otherwise the seed matrix buys no coverage.
func TestScheduleSeedsDiffer(t *testing.T) {
	s1 := NewSchedule(1, ScheduleProfile())
	s2 := NewSchedule(2, ScheduleProfile())
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if s1.At(PointClaim, int32(i), 0) == s2.At(PointClaim, int32(i), 0) {
			same++
		}
	}
	if same == n {
		t.Fatal("two different seeds drew identical action sequences")
	}
}

// TestScheduleWeights: the drawn action distribution must roughly follow
// the profile, and a zero profile must never perturb.
func TestScheduleWeights(t *testing.T) {
	s := NewSchedule(7, Profile{Yield: 500})
	yields, nones := 0, 0
	const n = 4000
	for i := 0; i < n; i++ {
		switch s.At(PointResolve, int32(i), int32(i+1)) {
		case ActYield:
			yields++
		case ActNone:
			nones++
		default:
			t.Fatal("profile with only Yield weight drew another action")
		}
	}
	if yields < n/3 || yields > 2*n/3 {
		t.Errorf("Yield=500 permille drew %d/%d yields", yields, n)
	}
	zero := NewSchedule(7, Profile{})
	for i := 0; i < 200; i++ {
		if act := zero.At(PointClaim, int32(i), 0); act != ActNone {
			t.Fatalf("zero profile injected %v", act)
		}
	}
}

// TestScheduleConcurrent: concurrent consultation must stay race-clean
// (this test is meaningful under -race) and count every decision.
func TestScheduleConcurrent(t *testing.T) {
	s := NewSchedule(3, FaultProfile())
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.At(Point(i%int(NumPoints)), int32(w), int32(i))
			}
		}(w)
	}
	wg.Wait()
	if got := s.Decisions(); got != workers*per {
		t.Errorf("Decisions() = %d, want %d", got, workers*per)
	}
}

// TestNames: every point and action renders a distinct non-empty name
// (they key observability events and log lines).
func TestNames(t *testing.T) {
	seenP := map[string]bool{}
	for p := Point(0); p < NumPoints; p++ {
		name := p.String()
		if name == "" || name == "invalid" || seenP[name] {
			t.Errorf("point %d has bad name %q", p, name)
		}
		seenP[name] = true
	}
	seenA := map[string]bool{}
	for a := Action(0); a < numActions; a++ {
		name := a.String()
		if name == "" || name == "invalid" || seenA[name] {
			t.Errorf("action %d has bad name %q", a, name)
		}
		seenA[name] = true
	}
	if !ActFail.Faulty() || !ActPanic.Faulty() || !ActTimeout.Faulty() {
		t.Error("fault actions not marked Faulty")
	}
	if ActYield.Faulty() || ActFlush.Faulty() || ActNone.Faulty() {
		t.Error("schedule actions marked Faulty")
	}
}
