// Package chaos provides deterministic schedule perturbation for the
// concurrent sweeping core. The parallel obligation scheduler and the
// prover engines consult an Injector at every decision point — claiming an
// obligation, flushing the counterexample pool, folding a merge, resolving
// a verdict, idling for work, stealing obligations from a sibling worker's
// deque, batch-merging a private counterexample pool — and the injector
// answers with an action:
// yield the processor, spin out a delay, force an early pool flush, wake
// idle workers spuriously, or (at the engine boundary) fail, time out, or
// panic the prove call.
//
// The point is reproducible interleaving exploration. Race bugs in the
// scheduler's termination protocol historically needed -race timing luck to
// surface; a seeded Schedule turns each seed into one deterministic-ish
// pattern of perturbations, so a fuzz harness can sweep thousands of
// distinct interleavings per circuit and replay any failing one from its
// seed. Determinism is per decision sequence, not per wall clock: the n-th
// consultation of a given point for a given node pair always draws the same
// action for the same seed.
//
// The package depends only on the standard library so every layer of the
// pipeline (prover, sweep, fuzz) can import it.
package chaos

import "sync/atomic"

// Point identifies one decision point in the concurrent core where an
// injector is consulted.
type Point uint8

const (
	// PointClaim fires when a worker has claimed an obligation and is about
	// to prove it — perturbing here widens the window in which other
	// workers observe the claim.
	PointClaim Point = iota
	// PointFlush fires immediately before a counterexample-pool flush.
	PointFlush
	// PointMerge fires before an Equal verdict's union-find merge.
	PointMerge
	// PointResolve fires when a worker holds a verdict and is about to fold
	// it into the shared partition — the stale-snapshot window of the PR 4
	// missed-merge bug.
	PointResolve
	// PointVerdict fires at the prover Engine boundary, before the real
	// engine runs; fault actions (fail, timeout, panic) apply here.
	PointVerdict
	// PointWait fires when an idle worker is about to sleep for more work;
	// wake actions here simulate spurious wakeups.
	PointWait
	// PointSteal fires when a worker with an empty deque has stolen hints
	// from a victim's deque and is about to claim one — the window where the
	// victim observes half its queue vanish.
	PointSteal
	// PointBatchMerge fires before a worker's private counterexample pool is
	// merged into the partition through one batched refinement, reordering
	// the flush relative to in-flight obligations on other workers.
	PointBatchMerge

	// NumPoints bounds the Point values. New points are appended before this
	// marker so existing points keep their values and seeded schedules keep
	// their historical draws.
	NumPoints
)

var pointNames = [NumPoints]string{
	PointClaim:      "claim",
	PointFlush:      "flush",
	PointMerge:      "merge",
	PointResolve:    "resolve",
	PointVerdict:    "verdict",
	PointWait:       "wait",
	PointSteal:      "steal",
	PointBatchMerge: "batch_merge",
}

func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return "invalid"
}

// Action is an injector's answer at a decision point. Consumers apply the
// actions that make sense at their point and ignore the rest, so one
// weighted distribution serves every point.
type Action uint8

const (
	// ActNone proceeds unperturbed — the common case.
	ActNone Action = iota
	// ActYield yields the processor once before proceeding.
	ActYield
	// ActDelay yields repeatedly, simulating a descheduled worker.
	ActDelay
	// ActFlush forces an early counterexample-pool flush, reordering
	// refinement relative to in-flight obligations.
	ActFlush
	// ActWake broadcasts a spurious wakeup to idle workers.
	ActWake
	// ActFail makes the engine report a transient Unknown without running.
	ActFail
	// ActTimeout is ActFail after a delay, simulating a slow engine death.
	ActTimeout
	// ActPanic panics the prove call (recovered by parallel workers).
	ActPanic

	numActions
)

var actionNames = [numActions]string{
	ActNone:    "none",
	ActYield:   "yield",
	ActDelay:   "delay",
	ActFlush:   "force_flush",
	ActWake:    "spurious_wake",
	ActFail:    "fail",
	ActTimeout: "timeout",
	ActPanic:   "panic",
}

func (a Action) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return "invalid"
}

// Faulty reports whether the action injects an engine failure (as opposed
// to merely reshaping the schedule). Runs perturbed only by non-faulty
// actions must produce results identical to unperturbed runs.
func (a Action) Faulty() bool {
	return a == ActFail || a == ActTimeout || a == ActPanic
}

// Injector decides the action taken at each decision point. a and b are
// the node pair in play (negative when no pair applies). Implementations
// must be goroutine-safe: parallel workers consult concurrently.
type Injector interface {
	At(p Point, a, b int32) Action
}

// Profile weights a Schedule's actions in permille (out of 1000) per
// consultation; the remainder is ActNone. The zero Profile never perturbs.
type Profile struct {
	Yield int // permille chance of ActYield
	Delay int // permille chance of ActDelay
	Flush int // permille chance of ActFlush
	Wake  int // permille chance of ActWake

	Fail    int // permille chance of ActFail
	Timeout int // permille chance of ActTimeout
	Panic   int // permille chance of ActPanic
}

// ScheduleProfile perturbs timing only — yields, delays, forced flushes,
// spurious wakeups. Because no verdicts are faulted, a run under this
// profile must produce exactly the sequential result: it is the profile
// behind the interleaving parity gate.
func ScheduleProfile() Profile {
	return Profile{Yield: 300, Delay: 120, Flush: 60, Wake: 60}
}

// FaultProfile adds engine failures, timeouts, and worker panics on top of
// schedule perturbation, exercising the requeue/retry degradation paths.
func FaultProfile() Profile {
	return Profile{Yield: 220, Delay: 80, Flush: 40, Wake: 40,
		Fail: 60, Timeout: 15, Panic: 25}
}

// Schedule is the seeded deterministic Injector: action n at point p for
// pair (a, b) is a pure function of (seed, p, n, a, b), where n is a
// per-point atomic consultation counter. Two runs with the same seed that
// visit a point in the same order draw identical actions; concurrent runs
// stay valid (the counter is atomic) but may attribute draws to different
// workers — which is the point: one seed explores a neighborhood of
// interleavings rather than a single trace.
type Schedule struct {
	seed uint64
	prof Profile
	n    [NumPoints]atomic.Uint64
}

// NewSchedule creates a Schedule drawing from prof with the given seed.
func NewSchedule(seed int64, prof Profile) *Schedule {
	return &Schedule{seed: uint64(seed), prof: prof}
}

// At implements Injector.
func (s *Schedule) At(p Point, a, b int32) Action {
	if int(p) >= len(s.n) {
		return ActNone
	}
	n := s.n[p].Add(1)
	h := mix(s.seed ^ uint64(p)<<56)
	h = mix(h ^ n)
	h = mix(h ^ uint64(uint32(a))<<32 ^ uint64(uint32(b)))
	roll := int(h % 1000)
	for _, c := range [...]struct {
		w   int
		act Action
	}{
		{s.prof.Yield, ActYield},
		{s.prof.Delay, ActDelay},
		{s.prof.Flush, ActFlush},
		{s.prof.Wake, ActWake},
		{s.prof.Fail, ActFail},
		{s.prof.Timeout, ActTimeout},
		{s.prof.Panic, ActPanic},
	} {
		if roll < c.w {
			return c.act
		}
		roll -= c.w
	}
	return ActNone
}

// Decisions returns how many times the schedule has been consulted across
// all points — a coverage signal for harnesses.
func (s *Schedule) Decisions() uint64 {
	var total uint64
	for i := range s.n {
		total += s.n[i].Load()
	}
	return total
}

// mix is the SplitMix64 finalizer, the same diffusion the fuzz campaign
// uses to derive per-iteration seeds.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
