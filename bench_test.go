package simgen

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper, plus ablation benchmarks for the individual design choices
// (implication depth, decision heuristic) and for the substrate components.
//
// The full-resolution tables are produced by `go run ./cmd/experiments all`;
// these benchmarks measure the same pipelines under the Go benchmark
// harness so regressions in any stage show up as time/allocs changes.

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"simgen/internal/bdd"
	"simgen/internal/blif"
	"simgen/internal/core"
	"simgen/internal/experiments"
	"simgen/internal/genbench"
	"simgen/internal/mapper"
	"simgen/internal/pcache"
	"simgen/internal/sim"
	"simgen/internal/sweep"
	"simgen/internal/tt"
)

// benchCfg returns the experiment configuration used by the table/figure
// benchmarks: the paper's parameters with a conflict budget that keeps the
// slowest arithmetic proofs (voter, square) bounded.
func benchCfg(benchmarks ...string) experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.ConflictBudget = 20000
	if len(benchmarks) > 0 {
		cfg.Benchmarks = benchmarks
	}
	return cfg
}

// BenchmarkTable1 regenerates Table 1 (normalized cost and simulation
// runtime of the five methods) over the full 42-benchmark suite.
func BenchmarkTable1(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Cost[0] != 1.0 {
			b.Fatal("normalization broken")
		}
	}
}

// BenchmarkTable2 regenerates the upper half of Table 2 (SAT calls and SAT
// time of RevS vs SimGen) over the full suite.
func BenchmarkTable2(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 42 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTable2Scaled regenerates one row of the lower half of Table 2
// (putontop-scaled benchmarks). The full scaled set runs via
// `cmd/experiments table2big`.
func BenchmarkTable2Scaled(b *testing.B) {
	cfg := benchCfg()
	set := []experiments.ScaledBenchmark{{Name: "alu4", Copies: 15}}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2Scaled(cfg, set)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].CallsRevS == 0 && rows[0].CallsSGen == 0 {
			b.Fatal("scaled benchmark produced no SAT work")
		}
	}
}

// BenchmarkFigure5 regenerates the Figure 5 data (per-benchmark normalized
// differences of cost, simulation runtime, SAT calls and SAT time) on a
// representative subset.
func BenchmarkFigure5(b *testing.B) {
	cfg := benchCfg("alu4", "apex2", "cps", "pdc", "spla", "ex1010", "priority", "b14_C")
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		fr := experiments.FigureRows(rows)
		if len(fr) != 8 {
			b.Fatal("figure rows wrong")
		}
	}
}

// BenchmarkFigure6 regenerates the Figure 6 data (normalized differences on
// stacked benchmarks) for one stacked circuit.
func BenchmarkFigure6(b *testing.B) {
	cfg := benchCfg()
	set := []experiments.ScaledBenchmark{{Name: "arbiter", Copies: 15}}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2Scaled(cfg, set)
		if err != nil {
			b.Fatal(err)
		}
		if len(experiments.FigureRows(rows)) != 1 {
			b.Fatal("figure rows wrong")
		}
	}
}

// BenchmarkFigure7 regenerates the Figure 7 trajectories (RandS vs
// RandS+RevS vs RandS+SimGen) on the paper's two circuits, apex2 and cps.
func BenchmarkFigure7(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		for _, bench := range []string{"apex2", "cps"} {
			trs, err := experiments.Figure7(bench, 30, 3, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if len(trs) != 3 {
				b.Fatal("trajectories wrong")
			}
		}
	}
}

// --- Ablation benchmarks: the design choices DESIGN.md calls out. ---

func benchGeneration(b *testing.B, strategy core.Strategy) {
	net, err := LoadBenchmark("apex2")
	if err != nil {
		b.Fatal(err)
	}
	run := core.NewRunner(net, 1, 42)
	gen := core.NewGenerator(net, strategy, 1)
	classIdx := run.Classes.NonSingleton()
	if len(classIdx) == 0 {
		b.Fatal("no classes")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		members := run.Classes.Members(classIdx[i%len(classIdx)])
		targets, gold := core.OutGold(members)
		gen.VectorForTargets(targets, gold)
	}
}

// BenchmarkAblationSIRD measures vector generation with simple implication
// and random decisions (the SI+RD column of Table 1).
func BenchmarkAblationSIRD(b *testing.B) { benchGeneration(b, core.StrategySIRD) }

// BenchmarkAblationAIRD measures advanced implication with random decisions.
func BenchmarkAblationAIRD(b *testing.B) { benchGeneration(b, core.StrategyAIRD) }

// BenchmarkAblationAIDC measures advanced implication with the don't-care
// heuristic.
func BenchmarkAblationAIDC(b *testing.B) { benchGeneration(b, core.StrategyAIDC) }

// BenchmarkAblationSimGen measures the full AI+DC+MFFC configuration.
func BenchmarkAblationSimGen(b *testing.B) { benchGeneration(b, core.StrategySimGen) }

// BenchmarkAblationRevS measures the reverse-simulation baseline's vector
// generation for comparison with the four SimGen configurations.
func BenchmarkAblationRevS(b *testing.B) {
	net, err := LoadBenchmark("apex2")
	if err != nil {
		b.Fatal(err)
	}
	run := core.NewRunner(net, 1, 42)
	rev := core.NewReverse(net, 1)
	classIdx := run.Classes.NonSingleton()
	if len(classIdx) == 0 {
		b.Fatal("no classes")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		members := run.Classes.Members(classIdx[i%len(classIdx)])
		rev.VectorForPair(members[0], members[1])
	}
}

// --- Substrate benchmarks. ---

// BenchmarkSimulation64 measures bit-parallel simulation of 64 vectors
// through a mid-size benchmark on the production hot path: a compiled
// Simulator reused across batches, as the runner and the sweeping engines
// hold it. The "oneshot" arm pays per-call compilation and is the
// convenience path only.
func BenchmarkSimulation64(b *testing.B) {
	net, err := LoadBenchmark("pdc")
	if err != nil {
		b.Fatal(err)
	}
	run := core.NewRunner(net, 1, 1) // warms the cover cache
	_ = run
	rng := rand.New(rand.NewSource(2))
	inputs := sim.RandomInputs(net, 1, rng)
	s := sim.NewSimulator(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Simulate(inputs, 1)
	}
}

// BenchmarkSimulation64Oneshot measures the package-level convenience path,
// which compiles a fresh Simulator per call.
func BenchmarkSimulation64Oneshot(b *testing.B) {
	net, err := LoadBenchmark("pdc")
	if err != nil {
		b.Fatal(err)
	}
	run := core.NewRunner(net, 1, 1)
	_ = run
	rng := rand.New(rand.NewSource(2))
	inputs := sim.RandomInputs(net, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Simulate(net, inputs, 1)
	}
}

// BenchmarkSATSweep measures a full sweep (simulation + SAT) of apex2.
func BenchmarkSATSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net, err := LoadBenchmark("apex2")
		if err != nil {
			b.Fatal(err)
		}
		run := core.NewRunner(net, 1, 42)
		gen := core.NewGenerator(net, core.StrategySimGen, 1)
		run.Run(gen, 20)
		res := sweep.New(net, run.Classes, sweep.Options{}).Run()
		if res.FinalCost != 0 && res.Unresolved == 0 && res.SATCalls == 0 {
			b.Fatal("no work")
		}
	}
}

// BenchmarkMapper measures K=6 LUT mapping of the des benchmark AIG.
func BenchmarkMapper(b *testing.B) {
	bench, _ := genbench.ByName("des")
	g := bench.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapper.Map(g, mapper.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkISOP measures cover extraction for random 6-input functions —
// the hot path when node row tables are first built.
func BenchmarkISOP(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	fns := make([]tt.Table, 256)
	for i := range fns {
		fns[i] = tt.FromWords(6, []uint64{rng.Uint64()})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt.ISOP(fns[i%len(fns)])
	}
}

// BenchmarkCEC measures end-to-end equivalence checking of a benchmark
// against its BLIF round-trip.
func BenchmarkCEC(b *testing.B) {
	net, err := LoadBenchmark("alu4")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := CEC(net, net.Clone(), CECOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Equivalent {
			b.Fatal("self-CEC failed")
		}
	}
}

// --- Extension ablations: alternative vector sources, OUTgold policies,
// backtracking, and the BDD-vs-SAT sweeping engines. ---

func benchSourcePipeline(b *testing.B, mk func(net *Network) VectorSource) {
	net, err := LoadBenchmark("apex2")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run := core.NewRunner(net, 1, 42)
		run.BatchSize = 1
		run.Run(mk(net), 20)
	}
}

// BenchmarkSourceOneDistance measures refinement driven by 1-distance
// vectors (Mishchenko et al.), a related-work baseline.
func BenchmarkSourceOneDistance(b *testing.B) {
	benchSourcePipeline(b, func(net *Network) VectorSource {
		return NewOneDistance(net, 7, 8)
	})
}

// BenchmarkSourceSATVectors measures refinement driven by SAT-generated
// vectors (Lee et al. style) — each vector costs a solver call.
func BenchmarkSourceSATVectors(b *testing.B) {
	benchSourcePipeline(b, func(net *Network) VectorSource {
		return NewSATVector(net, 7)
	})
}

// BenchmarkSourceSimGen is the matching SimGen pipeline for the two
// baselines above.
func BenchmarkSourceSimGen(b *testing.B) {
	benchSourcePipeline(b, func(net *Network) VectorSource {
		return NewGenerator(net, StrategySimGen, 7)
	})
}

// BenchmarkOutGoldPolicies compares the three OUTgold distribution policies
// (the paper's extension hook) on the same workload.
func BenchmarkOutGoldPolicies(b *testing.B) {
	for _, policy := range []OutGoldPolicy{GoldAlternate, GoldTopology, GoldAdaptive} {
		b.Run(policy.String(), func(b *testing.B) {
			benchSourcePipeline(b, func(net *Network) VectorSource {
				g := NewGenerator(net, StrategySimGen, 7)
				g.GoldPolicy = policy
				return g
			})
		})
	}
}

// BenchmarkBacktracking compares the paper's no-backtracking configuration
// against bounded backtracking.
func BenchmarkBacktracking(b *testing.B) {
	for _, bt := range []int{0, 4, 16} {
		name := "off"
		if bt > 0 {
			name = strconv.Itoa(bt)
		}
		b.Run(name, func(b *testing.B) {
			benchSourcePipeline(b, func(net *Network) VectorSource {
				g := NewGenerator(net, StrategySimGen, 7)
				g.Backtrack = bt
				return g
			})
		})
	}
}

// BenchmarkBDDSweepVsSAT compares the two sweeping engines on a
// control-dominated circuit (where BDDs behave) — the historic trade-off
// the paper's related work describes.
func BenchmarkBDDSweepVsSAT(b *testing.B) {
	b.Run("bdd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net, _ := LoadBenchmark("misex3c")
			run := core.NewRunner(net, 1, 42)
			NewBDDSweeper(net, run.Classes, 0).Run()
		}
	})
	b.Run("sat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			net, _ := LoadBenchmark("misex3c")
			run := core.NewRunner(net, 1, 42)
			sweep.New(net, run.Classes, sweep.Options{}).Run()
		}
	})
}

// BenchmarkApplySweep measures the fraig-style network reduction.
func BenchmarkApplySweep(b *testing.B) {
	net, _ := LoadBenchmark("apex2")
	run := core.NewRunner(net, 1, 42)
	sw := sweep.New(net, run.Classes, sweep.Options{})
	sw.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplySweep(net, sw.Rep)
	}
}

// BenchmarkBalance measures AIG depth balancing on the des benchmark.
func BenchmarkBalance(b *testing.B) {
	bench, _ := genbench.ByName("des")
	g := bench.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Balance(g)
	}
}

// BenchmarkRefactor measures cone resynthesis on the spla benchmark.
func BenchmarkRefactor(b *testing.B) {
	bench, _ := genbench.ByName("spla")
	g := bench.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Refactor(g, 8)
	}
}

// BenchmarkAIGERBinaryRoundTrip measures AIGER write+read of b17_C.
func BenchmarkAIGERBinaryRoundTrip(b *testing.B) {
	bench, _ := genbench.ByName("b17_C")
	g := bench.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteAIGER(&buf, g, true); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadAIGER(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelSweep is the scheduler scaling family: a representative
// Table 2 subset swept at 1..16 workers. Setup (parsing, random
// simulation, class construction) runs off the clock so each sub-benchmark
// times only the sweep itself; `make bench-scaling` records the speedup
// curve into results/BENCH_parallel.json.
func BenchmarkParallelSweep(b *testing.B) {
	suite := []string{"alu4", "apex2", "cps", "pdc", "spla"}
	nets := make(map[string]*Network, len(suite))
	for _, name := range suite {
		net, err := LoadBenchmark(name)
		if err != nil {
			b.Fatal(err)
		}
		nets[name] = net
	}
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, name := range suite {
					b.StopTimer()
					net := nets[name]
					run := core.NewRunner(net, 1, 42)
					sw := sweep.New(net, run.Classes, sweep.Options{})
					b.StartTimer()
					res := sw.RunParallel(workers)
					if res.Proved == 0 && res.Disproved == 0 {
						b.Fatalf("%s: sweep produced no verdicts", name)
					}
				}
			}
		})
	}
}

// BenchmarkWarmSweep is the cross-run cache family: the Table 2 subset
// swept cache-cold (fresh cache directory every iteration, paying the SAT
// calls and recording proofs + patterns) versus cache-warm (a shared
// prefilled directory; pattern replay rebuilds the cold run's splits and
// every obligation settles from revalidated cache hits, so the warm half
// performs zero SAT calls — asserted, not assumed). `make bench-cache`
// records the cold/warm wall-time and SAT-call contrast into
// results/BENCH_cache.json.
func BenchmarkWarmSweep(b *testing.B) {
	suite := []string{"alu4", "apex2", "cps", "pdc", "spla"}
	nets := make(map[string]*Network, len(suite))
	for _, name := range suite {
		net, err := LoadBenchmark(name)
		if err != nil {
			b.Fatal(err)
		}
		nets[name] = net
	}
	// sweepAll sweeps the suite against the cache directory and returns
	// total SAT calls; every run replays stored patterns first, exactly the
	// cmd/sweep -cache-dir pipeline minus guided generation.
	sweepAll := func(b *testing.B, dir string) int64 {
		st, err := pcache.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		var calls int64
		for _, name := range suite {
			net := nets[name]
			run := core.NewRunner(net, 1, 42)
			sess := pcache.NewSession(st, net, nil)
			sess.Replay(context.Background(), run)
			res := sweep.New(net, run.Classes, sweep.Options{Cache: sess}).Run()
			if res.Proved == 0 && res.Disproved == 0 {
				b.Fatalf("%s: sweep produced no verdicts", name)
			}
			calls += int64(res.SATCalls)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		return calls
	}

	b.Run("cold", func(b *testing.B) {
		var calls int64
		for i := 0; i < b.N; i++ {
			calls = sweepAll(b, b.TempDir())
		}
		if calls == 0 {
			b.Fatal("cold sweep performed no SAT calls; nothing is being measured")
		}
		b.ReportMetric(float64(calls), "satcalls/op")
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		sweepAll(b, dir) // prefill off the clock
		b.ResetTimer()
		var calls int64
		for i := 0; i < b.N; i++ {
			calls = sweepAll(b, dir)
		}
		if calls != 0 {
			b.Fatalf("warm sweep performed %d SAT calls; the cache guarantee is broken", calls)
		}
		b.ReportMetric(0, "satcalls/op")
	})
}

// BenchmarkBDDBuild measures BDD construction for all POs of misex3c.
func BenchmarkBDDBuild(b *testing.B) {
	net, _ := LoadBenchmark("misex3c")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := bdd.NewBuilder(net)
		for _, po := range net.POs() {
			if _, err := builder.Node(po.Driver); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// loadDatapathPair reads one golden corpus pair from testdata/datapath —
// the same committed BLIF files the corpus replay test checks and a
// cmd/sweep -cec user would pass. The pairs are built and
// technology-mapped independently per half (genbench.SplitTwin), so they
// share no structure beyond what the two algorithms genuinely compute in
// common.
func loadDatapathPair(b *testing.B, name string) (*Network, *Network) {
	b.Helper()
	load := func(file string) *Network {
		f, err := os.Open(filepath.Join("testdata", "datapath", file))
		if err != nil {
			b.Fatalf("opening %s (regenerate with go test ./internal/sweep -run DatapathCorpus -update-datapath): %v", file, err)
		}
		defer f.Close()
		net, err := blif.Parse(f)
		if err != nil {
			b.Fatal(err)
		}
		return net
	}
	return load(name + "_a.blif"), load(name + "_b.blif")
}

// datapathCEC runs one CEC arm over a datapath corpus pair under the
// cmd/sweep -cec defaults (random rounds, 20 guided SimGen iterations,
// then a portfolio sweep with the 4x/2-rung escalation ladder). On the
// multiplier pairs the bit-level arm faces the cross-implementation
// miters nearly cold, while the word arm proves the internal adder words
// bottom-up and learns the per-bit equalities into the shared solver
// before any wide miter is posed — that is the contrast being measured.
func datapathCEC(b *testing.B, an, bn *Network, word bool) (time.Duration, sweep.CECResult) {
	b.Helper()
	opts := sweep.CECOptions{
		Seed:             1,
		GuidedIterations: 20,
		Method:           "simgen",
		Sweep: sweep.Options{
			Engine:           sweep.EnginePortfolio,
			EscalationFactor: 4,
			MaxEscalations:   2,
		},
	}
	if word {
		opts.Sweep.WordStage = true
		opts.Sweep.Adaptive = true
	}
	start := time.Now()
	res, err := sweep.CEC(an, bn, opts)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Equivalent || res.Undecided {
		b.Fatalf("datapath pair: eq=%v undecided=%v", res.Equivalent, res.Undecided)
	}
	return time.Since(start), res
}

// BenchmarkDatapathCEC measures the split multiplier pairs with the
// word-staged adaptive portfolio ("word") vs the plain bit-level
// portfolio ("bit"). The setup is the datapath tripwire: on the 10x10
// pair the word arm must beat the bit-level arm by at least 2x wall clock
// — generous against the ~28x measured on the reference container
// (results/BENCH_datapath.json) but tight enough to catch the word stage
// silently disengaging or its learned equalities no longer reaching the
// solver. The timed sub-benchmarks report the faster 8x8 pair.
// `make bench-datapath` reports both arms; the CI datapath job runs this
// with -benchtime 1x.
func BenchmarkDatapathCEC(b *testing.B) {
	a10, b10 := loadDatapathPair(b, "mul10x10")
	wd, wres := datapathCEC(b, a10, b10, true)
	if wres.Sweep.WordChecks == 0 {
		b.Fatal("word arm performed no word checks; the stage is not engaged")
	}
	bd, _ := datapathCEC(b, a10, b10, false)
	if bd < 2*wd {
		b.Fatalf("word stage no longer pays on mul10x10: word %v vs bit-level %v (< 2x)", wd, bd)
	}
	b.Logf("mul10x10 tripwire: word %v vs bit-level %v (%.1fx)", wd, bd, float64(bd)/float64(wd))

	a8, b8 := loadDatapathPair(b, "mul8x8")
	for _, arm := range []struct {
		name string
		word bool
	}{{"word", true}, {"bit", false}} {
		arm := arm
		b.Run(arm.name, func(b *testing.B) {
			var calls int
			for i := 0; i < b.N; i++ {
				_, res := datapathCEC(b, a8, b8, arm.word)
				calls = res.Sweep.SATCalls
			}
			b.ReportMetric(float64(calls), "satcalls/op")
		})
	}
}
