GO ?= go

# Tier-1 gate: every change must pass this.
.PHONY: check
check: vet build test smoke

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test -race ./...

# Deadline smoke test: sweeping the SAT-hard "square" benchmark under a
# 100ms wall-clock budget must come back promptly with a partial result and
# the undecided exit code (3), in both sequential and parallel mode.
.PHONY: smoke
smoke:
	@$(GO) build -o .smoke-sweep ./cmd/sweep
	@for workers in 1 4; do \
		./.smoke-sweep -benchmark square -method none -timeout 100ms -workers $$workers >/dev/null; \
		code=$$?; \
		if [ $$code -ne 3 ]; then \
			echo "smoke: workers=$$workers: expected exit 3 (undecided on timeout), got $$code"; \
			exit 1; \
		fi; \
		echo "smoke: workers=$$workers: ok (exit 3, partial result)"; \
	done
	@rm -f .smoke-sweep

# Fuzzing smoke: a short differential+metamorphic campaign (deterministic
# seed, must be clean), the broken-sweeper self-test (must be caught), and
# a few seconds of each Go-native parser/ISOP fuzz target.
FUZZTIME ?= 10s
.PHONY: fuzz
fuzz:
	$(GO) run ./cmd/fuzz -n 200 -seed 1
	$(GO) run ./cmd/fuzz -n 200 -seed 1 -inject-unsound -oracle differential
	$(GO) test ./internal/blif -fuzz=FuzzBlifParse -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/blif -fuzz=FuzzParseBench -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/aiger -fuzz=FuzzAigerParse -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/tt -fuzz=FuzzISOP -fuzztime=$(FUZZTIME)

.PHONY: bench
bench:
	$(GO) test -bench=. -benchmem

.PHONY: experiments
experiments:
	$(GO) run ./cmd/experiments all
