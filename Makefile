GO ?= go

# Tier-1 gate: every change must pass this.
.PHONY: check
check: vet build test smoke

.PHONY: vet
vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skips gracefully when the staticcheck binary
# is not installed (CI installs it; local runs may not have it).
.PHONY: staticcheck
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: binary not found, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test -race ./...

# Full race-detector pass: every package, no caching. The scheduler's
# termination protocol is decided against fresh state (scheduler.go next),
# so the cross-package parity and clean-campaign suites run here too —
# nothing is scoped out.
.PHONY: race
race:
	$(GO) test -race -count=1 ./...

# Schedule-perturbation soak: the interleaving-sweep matrix at nightly
# scale (SIMGEN_PERTURB_COMBOS chaos schedules instead of the CI default
# 200), plus a perturbed differential campaign through the CLI.
PERTURB_COMBOS ?= 2000
.PHONY: fuzz-perturb
fuzz-perturb:
	SIMGEN_PERTURB_COMBOS=$(PERTURB_COMBOS) $(GO) test -race -count=1 \
		-run 'TestInterleavingSweep' ./internal/fuzz
	$(GO) run ./cmd/fuzz -n 100 -seed 1 -perturb -perturb-schedules 4 -oracle differential

# Coverage over the library packages, with a soft floor on internal/obs:
# the observability layer is pure bookkeeping, so uncovered lines there are
# almost always an event kind nothing asserts on.
OBS_COVER_FLOOR ?= 70
.PHONY: cover
cover:
	$(GO) test -coverprofile=/tmp/cover.out ./internal/...
	@$(GO) tool cover -func=/tmp/cover.out | tail -1
	@pct=$$($(GO) test -cover ./internal/obs 2>/dev/null \
		| sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
	if [ -z "$$pct" ]; then \
		echo "cover: could not read internal/obs coverage"; exit 1; \
	fi; \
	ok=$$(awk -v p="$$pct" -v f="$(OBS_COVER_FLOOR)" 'BEGIN { print (p >= f) ? 1 : 0 }'); \
	if [ "$$ok" != 1 ]; then \
		echo "cover: internal/obs coverage $$pct% is below the $(OBS_COVER_FLOOR)% floor"; \
		exit 1; \
	fi; \
	echo "cover: internal/obs coverage $$pct% (floor $(OBS_COVER_FLOOR)%)"

# Deadline smoke test: sweeping the SAT-hard "square" benchmark under a
# 100ms wall-clock budget must come back promptly with a partial result and
# the undecided exit code (3), in both sequential and parallel mode.
.PHONY: smoke
smoke:
	@$(GO) build -o .smoke-sweep ./cmd/sweep
	@for workers in 1 4; do \
		./.smoke-sweep -benchmark square -method none -timeout 100ms -workers $$workers >/dev/null; \
		code=$$?; \
		if [ $$code -ne 3 ]; then \
			echo "smoke: workers=$$workers: expected exit 3 (undecided on timeout), got $$code"; \
			exit 1; \
		fi; \
		echo "smoke: workers=$$workers: ok (exit 3, partial result)"; \
	done
	@rm -f .smoke-sweep

# Fuzzing smoke: a short differential+metamorphic campaign (deterministic
# seed, must be clean), the broken-sweeper self-test (must be caught), and
# a few seconds of each Go-native parser/ISOP fuzz target.
FUZZTIME ?= 10s
.PHONY: fuzz
fuzz:
	$(GO) run ./cmd/fuzz -n 200 -seed 1
	$(GO) run ./cmd/fuzz -n 200 -seed 1 -inject-unsound -oracle differential
	$(GO) test ./internal/blif -fuzz=FuzzBlifParse -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/blif -fuzz=FuzzParseBench -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/aiger -fuzz=FuzzAigerParse -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/tt -fuzz=FuzzISOP -fuzztime=$(FUZZTIME)

# Full-suite benchmarks: one per paper table/figure plus substrate
# components (repo root bench_test.go).
.PHONY: bench-full
bench-full:
	$(GO) test -bench=. -benchmem

# Simulation-core micro-benchmarks: the arena kernel, incremental
# resimulation, bucketed refinement, vector packing, the sweeping
# counterexample pool, and end-to-end service throughput. BENCHCOUNT
# repetitions give the gate stable medians.
BENCHCOUNT ?= 5
BENCHES ?= BenchmarkSimulate|BenchmarkResimulate|BenchmarkRefine|BenchmarkPackVectors|BenchmarkSweepCexPool|BenchmarkObligationScheduler|BenchmarkTracerOverhead|BenchmarkSweepdThroughput|BenchmarkWarmSweep
BENCHDIRS ?= ./internal/sim ./internal/sweep ./internal/sweepd .
.PHONY: bench
bench:
	$(GO) test -run 'xxx' -bench '$(BENCHES)' -benchmem -count $(BENCHCOUNT) \
		$(BENCHDIRS)

# Scheduler scaling curve: the Table 2 subset swept at 1..16 workers (root
# bench_test.go BenchmarkParallelSweep). Medians over BENCHSCALE_COUNT runs
# feed results/BENCH_parallel.json; CI runs a workers={1,8} smoke of the
# same family and gates on gross regression.
BENCHSCALE_COUNT ?= 3
.PHONY: bench-scaling
bench-scaling:
	$(GO) test -run 'xxx' -bench 'BenchmarkParallelSweep' -benchmem \
		-count $(BENCHSCALE_COUNT) -timeout 60m .

# Cross-run cache contrast: the Table 2 subset swept cache-cold vs
# cache-warm (root bench_test.go BenchmarkWarmSweep; the warm arm asserts
# zero SAT calls). Medians feed results/BENCH_cache.json.
.PHONY: bench-cache
bench-cache:
	$(GO) test -run 'xxx' -bench 'BenchmarkWarmSweep' -benchmem \
		-count $(BENCHSCALE_COUNT) -timeout 30m .

# Cross-run cache soak via the CLI: sweep two Table 2 circuits cold then
# warm against one shared cache directory; the warm runs must be SAT-free
# (calls=0) and reduce to byte-identical networks.
CACHE_SOAK_DIR ?= /tmp/simgen_cache_soak
.PHONY: cache-soak
cache-soak:
	$(GO) build -o $(CACHE_SOAK_DIR)/sweep ./cmd/sweep 2>/dev/null || \
		{ rm -rf $(CACHE_SOAK_DIR) && mkdir -p $(CACHE_SOAK_DIR) && $(GO) build -o $(CACHE_SOAK_DIR)/sweep ./cmd/sweep; }
	rm -rf $(CACHE_SOAK_DIR)/cache $(CACHE_SOAK_DIR)/*.blif $(CACHE_SOAK_DIR)/*.log
	set -e; for b in cps pdc; do \
		$(CACHE_SOAK_DIR)/sweep -method none -cache-dir $(CACHE_SOAK_DIR)/cache \
			-reduce $(CACHE_SOAK_DIR)/$$b.cold.blif -benchmark $$b; \
		$(CACHE_SOAK_DIR)/sweep -method none -cache-dir $(CACHE_SOAK_DIR)/cache \
			-reduce $(CACHE_SOAK_DIR)/$$b.warm.blif -benchmark $$b \
			| tee $(CACHE_SOAK_DIR)/$$b.warm.log; \
		grep -q 'sweeping: calls=0 ' $(CACHE_SOAK_DIR)/$$b.warm.log; \
		cmp $(CACHE_SOAK_DIR)/$$b.cold.blif $(CACHE_SOAK_DIR)/$$b.warm.blif; \
	done
	@echo "cache-soak: warm runs SAT-free with byte-identical reduced networks"

# Datapath word-vs-bit contrast: CEC of the committed multiplier corpus
# pairs with the word-staged adaptive portfolio vs the plain bit-level
# portfolio (root bench_test.go BenchmarkDatapathCEC). The benchmark
# asserts the mul10x10 tripwire in-process (word must beat bit-level by
# >=2x wall clock); medians feed results/BENCH_datapath.json. The fuzz and
# replay halves of the datapath layer run via `make datapath-test`.
.PHONY: bench-datapath
bench-datapath:
	$(GO) test -run 'xxx' -bench 'BenchmarkDatapathCEC' -benchtime 1x \
		-count $(BENCHSCALE_COUNT) -timeout 30m .

# Datapath verification layer: golden corpus replay (word-staged CEC of
# every committed pair + the mutated NEQ pair), the word/adaptive unit and
# property layer, and a bounded differential fuzz campaign over the
# datapath preset with the injected-unsound word engine self-check.
.PHONY: datapath-test
datapath-test:
	$(GO) test -count=1 -run 'TestDatapathCorpusReplay' ./internal/sweep
	$(GO) test -count=1 -run 'TestDatapath|TestUnsoundWord|TestWordProofCache|TestPoisonedWordCache' ./internal/fuzz
	$(GO) test -count=1 ./internal/word ./internal/prover
	$(GO) run ./cmd/fuzz -n 60 -seed 1 -datapath -oracle differential

# Regression gate: re-run the micro-benchmarks and fail when any median
# time/op regressed >20% against the committed baseline.
.PHONY: bench-gate
bench-gate:
	$(GO) test -run 'xxx' -bench '$(BENCHES)' -benchmem -count $(BENCHCOUNT) \
		$(BENCHDIRS) | tee /tmp/bench_new.txt
	$(GO) run ./cmd/benchgate -base results/bench_baseline.txt -new /tmp/bench_new.txt

# Refresh the committed baseline (run on the reference machine only).
.PHONY: bench-baseline
bench-baseline:
	$(GO) test -run 'xxx' -bench '$(BENCHES)' -benchmem -count $(BENCHCOUNT) \
		$(BENCHDIRS) | tee results/bench_baseline.txt

# Service load soak: a self-hosted sweepd driven by the seeded load
# generator. LOAD_JOBS/LOAD_RATE scale the soak; the CI smoke uses the
# smaller load-smoke target. Fails on any transport/protocol error.
LOAD_JOBS ?= 200
LOAD_RATE ?= 100
.PHONY: load
load:
	$(GO) run ./cmd/loadgen -launch -n $(LOAD_JOBS) -c 8 -rate $(LOAD_RATE) -job-timeout 10s \
		-require-all-done -slo-admission-p99 1s

.PHONY: load-smoke
load-smoke:
	$(GO) run ./cmd/loadgen -launch -n 25 -c 4 -rate 50 -job-timeout 10s \
		-require-all-done -slo-admission-p99 500ms

.PHONY: experiments
experiments:
	$(GO) run ./cmd/experiments all
