package simgen

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	net, err := LoadBenchmark("apex2")
	if err != nil {
		t.Fatal(err)
	}
	run := NewRunner(net, 1, 42)
	before := run.Classes.Cost()
	gen := NewGenerator(net, StrategySimGen, 1)
	run.Run(gen, 10)
	if run.Classes.Cost() > before {
		t.Fatal("cost increased")
	}
	res := Sweep(net, run.Classes, SweepOptions{})
	if res.FinalCost != run.Classes.Cost() {
		t.Fatal("sweep result inconsistent")
	}
	if res.SATCalls == 0 {
		t.Fatal("expected SAT work on apex2")
	}
}

func TestFacadeBLIFRoundTrip(t *testing.T) {
	net, err := LoadBenchmark("misex3c")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, net); err != nil {
		t.Fatal(err)
	}
	net2, err := ParseBLIF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CEC(net, net2, CECOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("BLIF round-trip changed the function")
	}
}

func TestFacadeAIGToNetwork(t *testing.T) {
	g := NewAIG("half")
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO("s", g.Xor(a, b))
	g.AddPO("c", g.And(a, b))
	net, err := MapAIG(g, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if net.NumPIs() != 2 || net.NumPOs() != 2 {
		t.Fatal("mapping interface wrong")
	}
}

func TestFacadePutOnTop(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 42 {
		t.Fatalf("suite has %d benchmarks", len(bs))
	}
	g := bs[0].Build()
	st := PutOnTop(g, 2)
	if st.NumAnds() < g.NumAnds() {
		t.Fatal("stacking shrank the circuit")
	}
}

func TestFacadeUnknownBenchmark(t *testing.T) {
	if _, err := LoadBenchmark("nope"); err == nil || !strings.Contains(err.Error(), "unknown benchmark") {
		t.Fatalf("err = %v", err)
	}
}

func TestFacadeBaselines(t *testing.T) {
	net, err := LoadBenchmark("ex5p")
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []VectorSource{NewReverse(net, 1), NewRandom(net, 2)} {
		run := NewRunner(net, 1, 3)
		run.Run(src, 3)
		if run.Classes.NumClasses() == 0 {
			t.Fatalf("%s: no classes", src.Name())
		}
	}
}

func TestFacadeAIGERRoundTrip(t *testing.T) {
	g := NewAIG("t")
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO("o", g.Xor(a, b))
	for _, binary := range []bool{false, true} {
		var buf bytes.Buffer
		if err := WriteAIGER(&buf, g, binary); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadAIGER(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumPIs() != 2 || len(g2.POs()) != 1 {
			t.Fatal("interface lost")
		}
	}
}

func TestFacadePatterns(t *testing.T) {
	vectors := [][]bool{{true, false}, {false, true}}
	var buf bytes.Buffer
	if err := WritePatterns(&buf, vectors); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPatterns(&buf, 2)
	if err != nil || len(got) != 2 {
		t.Fatalf("patterns round-trip: %v %v", got, err)
	}
}

func TestFacadeBDDSweeperAndApply(t *testing.T) {
	net, err := LoadBenchmark("misex3c")
	if err != nil {
		t.Fatal(err)
	}
	run := NewRunner(net, 1, 42)
	sw := NewBDDSweeper(net, run.Classes, 0)
	res := sw.Run()
	if res.Checks == 0 {
		t.Fatal("no BDD checks")
	}
	reduced := ApplySweep(net, sw.Rep)
	if reduced.NumPIs() != net.NumPIs() {
		t.Fatal("interface changed")
	}
	cec, err := CEC(net, reduced, CECOptions{Seed: 5})
	if err != nil || !cec.Equivalent {
		t.Fatalf("BDD-swept network not equivalent: %v %v", cec.Equivalent, err)
	}
}

func TestFacadeExtensionSources(t *testing.T) {
	net, err := LoadBenchmark("ex5p")
	if err != nil {
		t.Fatal(err)
	}
	one := NewOneDistance(net, 1, 4)
	one.AddBase(make([]bool, net.NumPIs()))
	sv := NewSATVector(net, 2)
	for _, src := range []VectorSource{one, sv} {
		run := NewRunner(net, 1, 3)
		run.BatchSize = 2
		run.Run(src, 3)
	}
	if sv.SATCalls == 0 {
		t.Fatal("SAT vector source did no solver work")
	}
}

func TestFacadeGeneratorOptions(t *testing.T) {
	net, err := LoadBenchmark("apex2")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(net, StrategySimGen, 1)
	g.GoldPolicy = GoldAdaptive
	g.Backtrack = 4
	run := NewRunner(net, 1, 42)
	before := run.Classes.Cost()
	run.Run(g, 10)
	if run.Classes.Cost() > before {
		t.Fatal("cost increased")
	}
}

func TestFacadeSimulateVector(t *testing.T) {
	net := NewNetwork("t")
	a := net.AddPI("a")
	_ = a
	out := SimulateVector(net, []bool{true})
	if len(out) != 1 || !out[0] {
		t.Fatal("SimulateVector wrong")
	}
}

func TestFacadeParallelSweep(t *testing.T) {
	net, err := LoadBenchmark("pdc")
	if err != nil {
		t.Fatal(err)
	}
	run := NewRunner(net, 1, 42)
	sw := NewSweeper(net, run.Classes, SweepOptions{})
	res := sw.RunParallel(4)
	if res.SATCalls == 0 {
		t.Fatal("no SAT calls")
	}
	if run.Classes.Cost() != res.FinalCost {
		t.Fatal("cost mismatch")
	}
}

func TestFacadeBenchFormat(t *testing.T) {
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = AND(a, b)\n"
	net, err := ParseBench(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out := SimulateVector(net, []bool{true, true})
	if !out[net.POs()[0].Driver] {
		t.Fatal("bench semantics wrong")
	}
}

func TestFacadeAIGTransforms(t *testing.T) {
	net, err := LoadBenchmark("misex3c")
	if err != nil {
		t.Fatal(err)
	}
	g := AIGFromNetwork(net)
	if g.NumPIs() != net.NumPIs() {
		t.Fatal("FromNetwork interface wrong")
	}
	b := Balance(g)
	if b.Depth() > g.Depth() {
		t.Fatal("balance increased depth")
	}
	r := Refactor(CleanupAIG(b), 8)
	// Re-map and CEC against the original network: the whole transform
	// chain must be functionally invisible.
	remapped, err := MapAIG(r, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CEC(net, remapped, CECOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("transform chain changed the function")
	}
}

func TestFacadeWriteVerilog(t *testing.T) {
	net, err := LoadBenchmark("alu4")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, net); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "module alu4") {
		t.Fatal("module header missing")
	}
}

func TestFacadeOptimizeAndMetrics(t *testing.T) {
	net, err := LoadBenchmark("misex3c")
	if err != nil {
		t.Fatal(err)
	}
	g := AIGFromNetwork(net)
	opt := OptimizeFixpoint(g, nil, 4)
	remapped, err := MapAIG(opt, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CEC(net, remapped, CECOptions{Seed: 11})
	if err != nil || !res.Equivalent {
		t.Fatalf("optimize changed function: %v %v", res.Equivalent, err)
	}

	run := NewRunner(net, 1, 42)
	gen := NewGenerator(net, StrategySimGen, 1)
	vecs := gen.NextBatch(run.Classes, 8)
	if len(vecs) > 1 {
		if tr := ToggleRate(net, vecs); tr < 0 || tr > 1 {
			t.Fatalf("toggle rate %v", tr)
		}
		if e := NodeEntropy(net, vecs); e < 0 || e > 1 {
			t.Fatalf("entropy %v", e)
		}
		if sp := SplitPower(net, run.Classes, vecs); sp < 0 {
			t.Fatalf("split power %v", sp)
		}
	}

	var buf bytes.Buffer
	if err := WriteTestbench(&buf, net, vecs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "module misex3c_tb;") {
		t.Fatal("testbench header missing")
	}
}
