// Quickstart: the complete SimGen flow on one built-in benchmark —
// random simulation partitions the nodes into candidate equivalence
// classes, SimGen's guided vectors split the classes random simulation
// cannot, and SAT sweeping proves or disproves what remains.
package main

import (
	"fmt"
	"log"

	"simgen"
)

func main() {
	// Load a benchmark circuit, LUT-mapped with K=6 like the paper.
	net, err := simgen.LoadBenchmark("apex2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit apex2: %s\n\n", net.Stats())

	// Step 1: one round (64 vectors) of random simulation builds the
	// initial candidate equivalence classes.
	run := simgen.NewRunner(net, 1, 42)
	fmt.Printf("after random simulation:  %4d candidate classes, cost %d\n",
		run.Classes.NumClasses(), run.Classes.Cost())

	// Step 2: twenty SimGen iterations. Each one picks a class, assigns
	// alternating OUTgold values to its members, and propagates them back
	// to the inputs with ATPG-style implications and decisions.
	gen := simgen.NewGenerator(net, simgen.StrategySimGen, 1)
	run.Run(gen, 20)
	fmt.Printf("after SimGen guidance:    %4d candidate classes, cost %d\n",
		run.Classes.NumClasses(), run.Classes.Cost())

	// Step 3: SAT sweeping settles every remaining candidate pair.
	res := simgen.Sweep(net, run.Classes, simgen.SweepOptions{})
	fmt.Printf("after SAT sweeping:       cost %d\n\n", res.FinalCost)
	fmt.Printf("SAT calls:    %d (%.2f ms)\n", res.SATCalls,
		float64(res.SATTime.Microseconds())/1000)
	fmt.Printf("proved equivalent: %d node pairs\n", res.Proved)
	fmt.Printf("disproved:         %d node pairs\n", res.Disproved)
}
