// Patterns example: reproduce the paper's Figure 7 intuition on a single
// benchmark — random simulation quickly reaches a local minimum, and only
// guided generation (reverse simulation or SimGen) keeps splitting the
// remaining equivalence classes.
package main

import (
	"fmt"
	"log"

	"simgen"
)

const (
	benchName  = "apex2"
	iterations = 25
	patience   = 3 // switch to the guided source after 3 stagnant iterations
)

func main() {
	fmt.Printf("cost per iteration on %s (lower = fewer worst-case SAT calls)\n\n", benchName)
	fmt.Printf("%-5s %10s %14s %14s\n", "iter", "RandS", "RandS+RevS", "RandS+SimGen")

	costs := make([][]int, 3)
	for i, scheme := range []string{"rands", "revs", "simgen"} {
		costs[i] = trajectory(scheme)
	}
	for it := 0; it < iterations; it++ {
		fmt.Printf("%-5d %10d %14d %14d\n", it, costs[0][it], costs[1][it], costs[2][it])
	}
	fmt.Printf("\nfinal: RandS=%d RandS+RevS=%d RandS+SimGen=%d\n",
		costs[0][iterations-1], costs[1][iterations-1], costs[2][iterations-1])
}

// trajectory runs one scheme: random vectors until the cost stagnates for
// `patience` iterations, then the guided source takes over.
func trajectory(scheme string) []int {
	net, err := simgen.LoadBenchmark(benchName)
	if err != nil {
		log.Fatal(err)
	}
	run := simgen.NewRunner(net, 1, 42)
	run.BatchSize = 1
	random := simgen.NewRandom(net, 7)
	var guided simgen.VectorSource
	switch scheme {
	case "revs":
		guided = simgen.NewReverse(net, 9)
	case "simgen":
		guided = simgen.NewGenerator(net, simgen.StrategySimGen, 9)
	}

	var out []int
	stagnant, last := 0, run.Classes.Cost()
	switched := false
	for i := 0; i < iterations; i++ {
		src := random
		if switched {
			src = guided
		}
		st := run.Step(src, i)
		out = append(out, st.Cost)
		if st.Cost == last {
			stagnant++
		} else {
			stagnant = 0
		}
		last = st.Cost
		if !switched && guided != nil && stagnant >= patience {
			switched = true
		}
	}
	return out
}
