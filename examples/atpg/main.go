// ATPG example: SimGen's pattern generator is ATPG turned inside out, so it
// can generate manufacturing test patterns too. For each stuck-at fault
// site we ask the generator for an input vector that drives the site to the
// opposite value (fault activation); simulating the good and faulty
// circuits then checks whether the fault propagates to an output
// (observation). We compare fault coverage against random patterns.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"simgen"
)

func main() {
	net, err := simgen.LoadBenchmark("misex3")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit misex3: %s\n\n", net.Stats())

	// Fault list: stuck-at-0 and stuck-at-1 on every LUT output.
	type fault struct {
		site    simgen.NodeID
		stuckAt bool
	}
	var faults []fault
	for id := 0; id < net.NumNodes(); id++ {
		nid := simgen.NodeID(id)
		if len(net.Node(nid).Fanins) > 0 {
			faults = append(faults, fault{nid, false}, fault{nid, true})
		}
	}
	fmt.Printf("fault list: %d stuck-at faults\n\n", len(faults))

	detectedBy := func(vec []bool, f fault) bool {
		good := simulate(net, vec, f.site, nil)
		bad := simulate(net, vec, f.site, &f.stuckAt)
		for _, po := range net.POs() {
			if good[po.Driver] != bad[po.Driver] {
				return true
			}
		}
		return false
	}

	// Random patterns baseline.
	rng := rand.New(rand.NewSource(1))
	randomVecs := make([][]bool, 64)
	for i := range randomVecs {
		v := make([]bool, net.NumPIs())
		for j := range v {
			v[j] = rng.Intn(2) == 1
		}
		randomVecs[i] = v
	}
	randomHits := 0
	for _, f := range faults {
		for _, v := range randomVecs {
			if detectedBy(v, f) {
				randomHits++
				break
			}
		}
	}

	// SimGen-targeted patterns: for each fault left undetected by the
	// random set, ask the generator to drive the site to the non-stuck
	// value (activation); observation is checked by simulation.
	gen := simgen.NewGenerator(net, simgen.StrategySimGen, 2)
	targetedHits := 0
	extraVectors := 0
	for _, f := range faults {
		hit := false
		for _, v := range randomVecs {
			if detectedBy(v, f) {
				hit = true
				break
			}
		}
		if !hit {
			// Try a few targeted activations.
			for attempt := 0; attempt < 8 && !hit; attempt++ {
				vec, honored, _ := gen.VectorForTargets(
					[]simgen.NodeID{f.site}, []bool{!f.stuckAt})
				if !honored[0] {
					continue
				}
				extraVectors++
				hit = detectedBy(vec, f)
			}
		}
		if hit {
			targetedHits++
		}
	}

	fmt.Printf("random patterns (64 vectors):  %d/%d faults detected (%.1f%%)\n",
		randomHits, len(faults), pct(randomHits, len(faults)))
	fmt.Printf("+ SimGen-targeted activation:  %d/%d faults detected (%.1f%%), %d extra vectors\n",
		targetedHits, len(faults), pct(targetedHits, len(faults)), extraVectors)
	fmt.Println("\n(undetected remainder: unobservable or redundant faults —")
	fmt.Println(" activation alone cannot expose them without path sensitization)")
}

func pct(a, b int) float64 { return 100 * float64(a) / float64(b) }

// simulate evaluates the network on vec; when stuck is non-nil, the fault
// site's output is forced to *stuck before its fanouts are evaluated.
func simulate(net *simgen.Network, vec []bool, site simgen.NodeID, stuck *bool) []bool {
	vals := make([]bool, net.NumNodes())
	piIdx := 0
	for id := 0; id < net.NumNodes(); id++ {
		nid := simgen.NodeID(id)
		nd := net.Node(nid)
		switch nd.Kind {
		case simgen.KindPI:
			vals[id] = vec[piIdx]
			piIdx++
		case simgen.KindConst:
			vals[id] = nd.Func.IsConst1()
		case simgen.KindLUT:
			m := 0
			for i, f := range nd.Fanins {
				if vals[f] {
					m |= 1 << uint(i)
				}
			}
			vals[id] = nd.Func.Bit(m)
		}
		if stuck != nil && nid == site {
			vals[id] = *stuck
		}
	}
	return vals
}
