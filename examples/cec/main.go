// CEC example: verify that two structurally different 16-bit adders — a
// ripple-carry chain and a generate/propagate (carry-lookahead style)
// implementation — compute the same function, then inject a bug and show
// the checker producing a concrete, verified counterexample.
package main

import (
	"fmt"
	"log"

	"simgen"
)

// rippleAdder maps a majority-gate ripple-carry adder to 6-LUTs.
func rippleAdder(width int) *simgen.Network {
	g := simgen.NewAIG("ripple")
	a := g.NewWordPIs("a", width)
	b := g.NewWordPIs("b", width)
	sum, carry := g.Add(a, b, simgen.LitFalse)
	g.AddPOWord("s", sum)
	g.AddPO("cout", carry)
	return mustMap(g)
}

// lookaheadAdder computes the same sum with generate/propagate carries.
// When buggy is set, one carry term uses OR instead of AND — a classic
// copy-paste bug that only shows on specific operand patterns.
func lookaheadAdder(width int, buggy bool) *simgen.Network {
	g := simgen.NewAIG("lookahead")
	a := g.NewWordPIs("a", width)
	b := g.NewWordPIs("b", width)
	sum := make(simgen.Word, width)
	carry := simgen.LitFalse
	for i := 0; i < width; i++ {
		gen := g.And(a[i], b[i])
		prop := g.Xor(a[i], b[i])
		if buggy && i == 11 {
			gen = g.Or(a[i], b[i]) // the injected bug
		}
		sum[i] = g.Xor(prop, carry)
		carry = g.Or(gen, g.And(prop, carry))
	}
	g.AddPOWord("s", sum)
	g.AddPO("cout", carry)
	return mustMap(g)
}

func mustMap(g *simgen.AIG) *simgen.Network {
	net, err := simgen.MapAIG(g, simgen.MapOptions{})
	if err != nil {
		log.Fatal(err)
	}
	return net
}

func check(a, b *simgen.Network, label string) {
	res, err := simgen.CEC(a, b, simgen.CECOptions{Seed: 7, GuidedIterations: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", label)
	fmt.Printf("  sweeping: %d SAT calls, %d equivalences proven\n",
		res.Sweep.SATCalls, res.Sweep.Proved)
	if res.Equivalent {
		fmt.Println("  verdict: EQUIVALENT")
		return
	}
	fmt.Printf("  verdict: NOT EQUIVALENT (output %s)\n", res.FailedPO)
	if ok, po := simgen.VerifyCounterexample(a, b, res.Counterexample); ok {
		fmt.Printf("  counterexample verified by simulation on output %s\n", po)
		av, bv := operands(res.Counterexample)
		fmt.Printf("  inputs: a=%d b=%d (a+b should be %d)\n", av, bv, av+bv)
	}
}

// operands decodes the counterexample's two 16-bit input words.
func operands(cex []bool) (uint64, uint64) {
	var a, b uint64
	for i := 0; i < 16; i++ {
		if cex[i] {
			a |= 1 << uint(i)
		}
		if cex[16+i] {
			b |= 1 << uint(i)
		}
	}
	return a, b
}

func main() {
	ripple := rippleAdder(16)
	good := lookaheadAdder(16, false)
	bad := lookaheadAdder(16, true)
	fmt.Printf("ripple:    %s\nlookahead: %s\n\n", ripple.Stats(), good.Stats())

	check(ripple, good, "ripple vs correct lookahead")
	fmt.Println()
	check(ripple, bad, "ripple vs buggy lookahead (carry bug at bit 11)")
}
