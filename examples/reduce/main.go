// Reduce example: SAT sweeping as a logic optimizer ("fraiging"). Proven
// node equivalences are materialized into a smaller network, and the
// reduction is re-verified with an independent equivalence check.
package main

import (
	"fmt"
	"log"

	"simgen"
)

func main() {
	for _, name := range []string{"apex2", "spla", "alu4", "e64"} {
		net, err := simgen.LoadBenchmark(name)
		if err != nil {
			log.Fatal(err)
		}

		// Simulation narrows the candidates, sweeping proves them.
		run := simgen.NewRunner(net, 1, 42)
		gen := simgen.NewGenerator(net, simgen.StrategySimGen, 1)
		run.Run(gen, 20)
		sw := simgen.NewSweeper(net, run.Classes, simgen.SweepOptions{})
		res := sw.Run()

		// Redirect merged nodes to their representatives; drop dead logic.
		reduced := simgen.ApplySweep(net, sw.Rep)

		// Trust but verify: the reduced circuit must be equivalent.
		cec, err := simgen.CEC(net, reduced, simgen.CECOptions{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "EQUIVALENT"
		if !cec.Equivalent {
			verdict = "BROKEN (this is a bug)"
		}
		fmt.Printf("%-8s %4d LUTs -> %4d LUTs  (%2d equivalences proven, %s)\n",
			name, net.NumLUTs(), reduced.NumLUTs(), res.Proved, verdict)
	}
}
